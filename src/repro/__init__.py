"""repro -- reproduction of "Profiling of OpenMP Tasks with Score-P".

Lorenz, Philippen, Schmidl, Wolf -- ICPP 2012.

The package layers, bottom to top:

* :mod:`repro.sim` -- deterministic discrete-event simulation kernel.
* :mod:`repro.events` -- regions, measurement events, event streams.
* :mod:`repro.runtime` -- simulated OpenMP 3.0 runtime (threads, tied
  tasks, taskwait, barriers, work stealing, lock contention).
* :mod:`repro.instrument` -- OPARI2/POMP2-style instrumentation layer.
* :mod:`repro.profiling` -- the paper's task-aware call-path profiler.
* :mod:`repro.cube` -- CUBE-style profile rendering and export.
* :mod:`repro.bots` -- the Barcelona OpenMP Tasks Suite, re-implemented.
* :mod:`repro.analysis` -- the paper's evaluation methodology (overhead,
  task statistics, per-depth tables, granularity advice).

Quickstart::

    from repro.analysis import run_app
    result = run_app("fib", n_threads=4, size="small", cutoff=6)
    print(result.profile.task_tree("fib_task").metrics.durations.mean)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
