"""One-stop performance report for a single run.

Bundles everything the paper says a task-aware tool should tell the user
(Section III) into one markdown-ish text document:

* run summary (kernel time, tasks, verification, time buckets),
* per-construct task statistics (instance counts, mean/min/max runtime,
  creation time) -- the Table I/Section VI numbers for *your* program,
* scheduling-point accounting (stub vs idle, Fig. 5's reading),
* granularity advisor findings,
* creation-balance diagnosis (Section III, third problem),
* trace-based management ratio and timeline, when events were recorded,
* memory statistics (max concurrent instance trees, node-pool recycling).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.advisor import advise
from repro.analysis.bottleneck import creation_balance, diagnose_creation_bottleneck
from repro.analysis.patterns import detect_patterns
from repro.analysis.tables import format_table
from repro.analysis.traces import management_ratio, render_timeline
from repro.events.regions import RegionType
from repro.profiling.metrics import format_time


def generate_report(result, title: Optional[str] = None) -> str:
    """Render a full report for an :class:`ExperimentResult` or any object
    with ``parallel`` (ParallelResult), ``profile``, and ``kernel_time``.
    """
    parallel = getattr(result, "parallel", result)
    profile = getattr(result, "profile", None) or parallel.profile
    lines: List[str] = []

    def heading(text: str) -> None:
        lines.append("")
        lines.append(f"## {text}")
        lines.append("")

    lines.append(f"# Performance report: {parallel.region_name}")
    if title:
        lines.append(f"_{title}_")

    # -- summary ---------------------------------------------------------
    heading("Run summary")
    n_threads = len(parallel.thread_stats)
    verified = getattr(result, "verified", None)
    rows = [
        ["kernel time", format_time(parallel.duration)],
        ["threads", n_threads],
        ["task instances", parallel.completed_tasks],
        ["tasks stolen", parallel.tasks_stolen],
        ["events dispatched", parallel.events_dispatched],
    ]
    if verified is not None:
        rows.append(["result verified", verified])
    lines.append(format_table(["metric", "value"], rows, align_right=False))

    heading("Where the threads' time went")
    buckets = ["work", "mgmt", "instr", "idle", "critical_wait"]
    total_all = sum(sum(s[b] for b in buckets) for s in parallel.thread_stats)
    bucket_rows = []
    for bucket in buckets:
        value = parallel.total(bucket)
        share = 100.0 * value / total_all if total_all else 0.0
        bucket_rows.append([bucket, format_time(value), f"{share:.1f}%"])
    lines.append(format_table(["bucket", "total", "share"], bucket_rows))

    if profile is None:
        lines.append("")
        lines.append("(uninstrumented run: no profile sections)")
        return "\n".join(lines)

    # -- task constructs ---------------------------------------------------
    heading("Task constructs")
    construct_rows = []
    for (region, parameter), tree in sorted(
        profile.aggregated_task_trees().items(), key=lambda kv: kv[0][0].name
    ):
        stats = tree.metrics.durations
        creates = tree.find(
            predicate=lambda n: n.region.region_type is RegionType.TASK_CREATE
        )
        creations = sum(n.metrics.visits for n in creates)
        creation_time = sum(n.metrics.inclusive_time for n in creates)
        construct_rows.append(
            [
                tree.display_name(),
                stats.count,
                f"{stats.mean:.2f}",
                f"{stats.minimum if stats.count else 0:.2f}",
                f"{stats.maximum if stats.count else 0:.2f}",
                f"{(creation_time / creations) if creations else 0:.2f}",
            ]
        )
    lines.append(
        format_table(
            ["construct", "instances", "mean [us]", "min [us]", "max [us]",
             "mean create [us]"],
            construct_rows,
        )
    )

    # -- scheduling points ---------------------------------------------------
    heading("Scheduling points (task execution vs idle/management)")
    sp_rows = []
    for thread_id in range(profile.n_threads):
        for node in profile.main_trees[thread_id].walk():
            if node.region.region_type not in (
                RegionType.BARRIER,
                RegionType.IMPLICIT_BARRIER,
                RegionType.TASKWAIT,
                RegionType.TASKYIELD,
            ):
                continue
            total = node.metrics.inclusive_time
            if total <= 0:
                continue
            stub = sum(
                c.metrics.inclusive_time for c in node.children.values() if c.is_stub
            )
            sp_rows.append(
                [
                    f"t{thread_id} {node.region.name}",
                    format_time(total),
                    format_time(stub),
                    format_time(total - stub),
                ]
            )
    if sp_rows:
        lines.append(
            format_table(
                ["scheduling point", "total", "task execution", "idle/mgmt"], sp_rows
            )
        )
    else:
        lines.append("(no scheduling-point time recorded)")

    # -- advisor -----------------------------------------------------------
    heading("Granularity advisor")
    findings = advise(profile)
    serious = [f for f in findings if f.severity != "info"]
    if serious:
        for finding in serious[:8]:
            lines.append(f"* {finding}")
    else:
        lines.append("* no granularity problems found")

    balance_finding = diagnose_creation_bottleneck(profile)
    balance = creation_balance(profile)
    heading("Task creation balance")
    lines.append(
        f"per-thread creations: {balance.creations_per_thread} "
        f"(imbalance {balance.imbalance:.2f})"
    )
    if balance_finding:
        lines.append(f"* {balance_finding}")

    # -- patterns ------------------------------------------------------------
    heading("Detected patterns")
    matches = detect_patterns(result if hasattr(result, "parallel") else parallel)
    if matches:
        for match in matches:
            lines.append(f"* {match}")
    else:
        lines.append("* none above the severity floor")

    # -- memory --------------------------------------------------------------
    heading("Profiler memory (Section V-B)")
    lines.append(
        f"max concurrently active tasks per thread: "
        f"{profile.max_concurrent_tasks_per_thread()}"
    )
    allocated = sum(s.get("pool", {}).get("allocated", 0) for s in profile.memory_stats)
    reused = sum(s.get("pool", {}).get("reused", 0) for s in profile.memory_stats)
    lines.append(f"instance-tree nodes allocated: {allocated}, recycled uses: {reused}")

    # -- traces ---------------------------------------------------------------
    trace = parallel.trace
    if trace is not None:
        heading("Trace analysis (Section VII outlook)")
        ratio = management_ratio(trace)
        lines.append(
            f"management/execution ratio at scheduling points: "
            f"{ratio['ratio']:.2f} "
            f"(exec {format_time(ratio['task_execution'])}, "
            f"mgmt {format_time(ratio['management'])}, "
            f"wait {format_time(ratio['waiting'])})"
        )
        lines.append("")
        lines.append("```")
        lines.append(render_timeline(trace))
        lines.append("```")

    return "\n".join(lines)
