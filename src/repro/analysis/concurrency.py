"""Concurrently executing tasks per thread (paper Section V-B, Table II).

The profiler counts live task-instance trees per thread; the per-run
maximum bounds the profiling system's memory requirement.  The paper's
finding: never more than ~20, tracking the recursion depth, and cut-off
variants stay below their no-cut-off counterparts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

from repro.analysis.experiment import run_app


def max_concurrent_tasks(
    name: str,
    size: str = "small",
    variant: str = "optimized",
    n_threads: int = 4,
    seed: int = 0,
    **run_kwargs,
) -> int:
    """Table II's number for one code/variant."""
    result = run_app(
        name,
        size=size,
        variant=variant,
        n_threads=n_threads,
        instrument=True,
        seed=seed,
        **run_kwargs,
    )
    assert result.profile is not None
    return result.profile.max_concurrent_tasks_per_thread()


def concurrency_table(
    entries: Iterable[Tuple[str, str]],
    size: str = "small",
    n_threads: int = 4,
    seed: int = 0,
) -> Dict[Tuple[str, str], int]:
    """Table II: (code, variant) -> max concurrent tasks per thread.

    ``entries`` mirrors the paper's 14 rows, e.g. ``('fib', 'optimized')``
    for "fib (cut-off)" and ``('nqueens', 'stress')`` for plain nqueens.
    """
    return {
        (name, variant): max_concurrent_tasks(
            name, size=size, variant=variant, n_threads=n_threads, seed=seed
        )
        for name, variant in entries
    }


#: The paper's Table II rows, in order: code name, our variant tag, label.
PAPER_TABLE2_ROWS: Sequence[Tuple[str, str, str]] = (
    ("alignment", "optimized", "alignment"),
    ("fft", "stress", "fft"),
    ("fib", "optimized", "fib (cut-off)"),
    ("floorplan", "stress", "floorplan"),
    ("floorplan", "optimized", "floorplan (cut-off)"),
    ("health", "stress", "health"),
    ("health", "optimized", "health (cut-off)"),
    ("nqueens", "stress", "nqueens"),
    ("nqueens", "optimized", "nqueens (cut-off)"),
    ("sort", "optimized", "sort"),
    ("sparselu", "optimized", "sparselu"),
    ("strassen", "stress", "strassen"),
    ("strassen", "optimized", "strassen (cut-off)"),
)
