"""Trace-based task analysis (the paper's Section VII outlook, built).

The profile alone cannot distinguish, inside a synchronization point,
*management* time (the runtime shuffling tasks) from *waiting* time (no
task available).  The paper proposes trace analysis: "the time between
the enter of the last synchronization point and the task switch event
would be of interest.  In this way it would be possible to calculate the
ratio of overall management time to exclusive execution time for tasks."

Given a recorded :class:`~repro.events.stream.ProgramTrace`
(``RuntimeConfig(record_events=True)``), this module computes:

* :func:`scheduling_latencies` -- the enter(scheduling point) -> first
  task event gaps, and the between-task gaps, per thread;
* :func:`sync_point_breakdown` -- for every scheduling-point visit:
  task execution vs. dispatch/management vs. trailing wait;
* :func:`management_ratio` -- the paper's proposed metric: overall
  management time at scheduling points / exclusive task execution time;
* :func:`task_timeline` / :func:`render_timeline` -- per-thread task
  fragment intervals, the Vampir-style view of Schmidl et al. [16],
  rendered as ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.events.model import (
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    is_implicit,
)
from repro.events.stream import EventStream, ProgramTrace


@dataclass
class SyncPointVisit:
    """One visit of one thread to one scheduling-point region."""

    thread_id: int
    region_name: str
    enter_time: float
    exit_time: float
    #: time spent executing task fragments inside the visit
    task_execution: float = 0.0
    #: gaps between entering/finishing tasks: dispatch & bookkeeping
    management: float = 0.0
    #: trailing gap after the last task fragment until the exit
    trailing_wait: float = 0.0
    fragments: int = 0

    @property
    def total(self) -> float:
        return self.exit_time - self.enter_time


def _is_task_event(event) -> bool:
    if isinstance(event, (TaskBeginEvent, TaskEndEvent)):
        return True
    if isinstance(event, TaskSwitchEvent):
        return True
    return False


def sync_point_breakdown(
    trace: ProgramTrace,
    region_names: Tuple[str, ...] = ("barrier", "implicit barrier", "taskwait"),
) -> List[SyncPointVisit]:
    """Decompose every scheduling-point visit of the *implicit* tasks.

    Only top-level visits are analyzed (a taskwait inside an executing
    explicit task belongs to that task's time, not the thread's wait).
    Within a visit, intervals where an explicit task is current count as
    task execution; the remaining time before/between fragments is
    management, and the gap after the last fragment until the region
    exit is the trailing wait (idle + final barrier release).
    """
    visits: List[SyncPointVisit] = []
    for stream in trace.streams:
        visits.extend(_analyze_stream(stream, region_names))
    return visits


def _analyze_stream(
    stream: EventStream, region_names: Tuple[str, ...]
) -> List[SyncPointVisit]:
    visits: List[SyncPointVisit] = []
    current_visit: Optional[SyncPointVisit] = None
    visit_depth = 0  # region nesting inside the visit
    in_task = False
    fragment_start = 0.0
    last_boundary = 0.0  # last time the non-task clock started counting

    for event in stream:
        if current_visit is None:
            if (
                isinstance(event, EnterEvent)
                and event.region.name in region_names
                and is_implicit(event.executing_instance)
            ):
                current_visit = SyncPointVisit(
                    thread_id=stream.thread_id,
                    region_name=event.region.name,
                    enter_time=event.time,
                    exit_time=event.time,
                )
                visit_depth = 1
                in_task = False
                last_boundary = event.time
            continue

        # inside a visit ------------------------------------------------
        if isinstance(event, TaskBeginEvent) or (
            isinstance(event, TaskSwitchEvent) and not is_implicit(event.instance)
        ):
            if not in_task:
                current_visit.management += event.time - last_boundary
                in_task = True
                fragment_start = event.time
                current_visit.fragments += 1
        elif isinstance(event, TaskEndEvent) or (
            isinstance(event, TaskSwitchEvent) and is_implicit(event.instance)
        ):
            if in_task:
                current_visit.task_execution += event.time - fragment_start
                in_task = False
                last_boundary = event.time
        elif isinstance(event, EnterEvent):
            if not in_task and is_implicit(event.executing_instance):
                visit_depth += 1
        elif isinstance(event, ExitEvent):
            if not in_task and is_implicit(event.executing_instance):
                visit_depth -= 1
                if visit_depth == 0:
                    current_visit.exit_time = event.time
                    current_visit.trailing_wait = event.time - last_boundary
                    # trailing wait was counted fresh; management holds the
                    # pre/between-fragment gaps only
                    visits.append(current_visit)
                    current_visit = None
    return visits


@dataclass
class SchedulingLatency:
    """Gap between arriving at a scheduling point and the first task."""

    thread_id: int
    region_name: str
    latency: float


def scheduling_latencies(
    trace: ProgramTrace,
    region_names: Tuple[str, ...] = ("barrier", "implicit barrier", "taskwait"),
) -> List[SchedulingLatency]:
    """Enter(sync point) -> first task-begin/switch gaps, per visit.

    The quantity the paper singles out: "the time between the enter of
    the last synchronization point and the task switch event".
    """
    out: List[SchedulingLatency] = []
    for visit in sync_point_breakdown(trace, region_names):
        if visit.fragments > 0:
            # management before the first fragment IS that latency for
            # the first task; approximated by the first management gap.
            out.append(
                SchedulingLatency(
                    thread_id=visit.thread_id,
                    region_name=visit.region_name,
                    latency=visit.management / visit.fragments,
                )
            )
    return out


def management_ratio(trace: ProgramTrace) -> Dict[str, float]:
    """The paper's proposed metric: management time vs task execution.

    Returns totals over all scheduling-point visits of all threads:
    ``{"task_execution", "management", "waiting", "ratio"}`` where ratio
    is management / task_execution (inf if no task executed).
    """
    totals = {"task_execution": 0.0, "management": 0.0, "waiting": 0.0}
    for visit in sync_point_breakdown(trace):
        totals["task_execution"] += visit.task_execution
        totals["management"] += visit.management
        totals["waiting"] += visit.trailing_wait
    execution = totals["task_execution"]
    totals["ratio"] = (totals["management"] / execution) if execution > 0 else float("inf")
    return totals


# ----------------------------------------------------------------------
# Timelines (the Vampir-style view of Schmidl et al. [16])
# ----------------------------------------------------------------------
@dataclass
class Fragment:
    """One executed task fragment on one thread."""

    thread_id: int
    instance: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def task_timeline(trace: ProgramTrace) -> List[Fragment]:
    """All task fragments of all threads, in start order."""
    fragments: List[Fragment] = []
    for stream in trace.streams:
        current: Optional[Tuple[int, float]] = None
        for event in stream:
            if isinstance(event, TaskBeginEvent):
                current = (event.instance, event.time)
            elif isinstance(event, TaskSwitchEvent):
                if current is not None and (
                    is_implicit(event.instance) or event.instance != current[0]
                ):
                    fragments.append(
                        Fragment(stream.thread_id, current[0], current[1], event.time)
                    )
                    current = None
                if not is_implicit(event.instance) and current is None:
                    current = (event.instance, event.time)
            elif isinstance(event, TaskEndEvent):
                if current is not None:
                    fragments.append(
                        Fragment(stream.thread_id, current[0], current[1], event.time)
                    )
                    current = None
    fragments.sort(key=lambda f: (f.start, f.thread_id))
    return fragments


def render_timeline(trace: ProgramTrace, width: int = 72) -> str:
    """ASCII per-thread timeline: '#' task execution, '.' everything else."""
    fragments = task_timeline(trace)
    if not fragments:
        return "(no task fragments)"
    t_end = max(f.end for f in fragments)
    t_start = min(
        (s[0].time for s in trace.streams if len(s)), default=0.0
    )
    span = max(t_end - t_start, 1e-9)
    lines = []
    for stream in trace.streams:
        row = ["."] * width
        for fragment in fragments:
            if fragment.thread_id != stream.thread_id:
                continue
            lo = int((fragment.start - t_start) / span * (width - 1))
            hi = int((fragment.end - t_start) / span * (width - 1))
            for i in range(lo, max(hi, lo) + 1):
                row[i] = "#"
        lines.append(f"t{stream.thread_id} |{''.join(row)}|")
    busy = sum(f.duration for f in fragments)
    lines.append(
        f"task execution: {busy:.1f} us over {len(fragments)} fragments, "
        f"span {span:.1f} us, utilization "
        f"{100 * busy / (span * trace.n_threads):.0f}%"
    )
    return "\n".join(lines)
