"""Thread-scaling study for any kernel (Table III generalized).

The paper's Section VI workflow compares profiles of runs with different
thread counts region by region.  :func:`scaling_study` automates it for
any BOTS kernel (or custom program): per region, the summed exclusive
time at every thread count plus its growth factor, classified into

* ``flat``      -- work-conserving regions (the task bodies),
* ``growing``   -- management-attributed regions (taskwait, creation,
  barriers) whose time rises with the team size,
* ``shrinking`` -- anything that parallelizes.

This is the evidence the paper derives its diagnosis from ("the increase
in runtime is due to management overhead of the runtime system").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiment import run_app
from repro.cube.query import flat_region_profile


@dataclass
class RegionScaling:
    """One region's exclusive time across thread counts."""

    region: str
    #: thread count -> summed exclusive time
    times: Dict[int, float]

    @property
    def growth(self) -> float:
        """time(max threads) / time(min threads); inf if starting at 0."""
        threads = sorted(self.times)
        first, last = self.times[threads[0]], self.times[threads[-1]]
        if first <= 0:
            return float("inf") if last > 0 else 1.0
        return last / first

    @property
    def classification(self) -> str:
        if self.growth > 1.5:
            return "growing"
        if self.growth < 1 / 1.5:
            return "shrinking"
        return "flat"


@dataclass
class ScalingStudy:
    app: str
    threads: Sequence[int]
    kernel_times: Dict[int, float]
    regions: List[RegionScaling]

    def region(self, name: str) -> RegionScaling:
        for entry in self.regions:
            if entry.region == name:
                return entry
        raise KeyError(f"no region {name!r} in the study")

    def classified(self, kind: str) -> List[RegionScaling]:
        return [r for r in self.regions if r.classification == kind]

    def diagnosis(self) -> str:
        """A Section VI-style one-paragraph reading of the study."""
        growing = self.classified("growing")
        kernel_growth = (
            self.kernel_times[max(self.threads)] / self.kernel_times[min(self.threads)]
        )
        if kernel_growth > 1.2 and growing:
            hot = max(growing, key=lambda r: r.times[max(self.threads)])
            return (
                f"{self.app}: kernel time grows {kernel_growth:.1f}x from "
                f"{min(self.threads)} to {max(self.threads)} threads while "
                f"task work stays constant; the growth concentrates in "
                f"management regions ({', '.join(r.region for r in growing)}), "
                f"led by {hot.region!r} ({hot.growth:.1f}x) -- the runtime "
                "system's task management is the bottleneck (increase task "
                "granularity)"
            )
        if kernel_growth < 0.8:
            return (
                f"{self.app}: scales ({kernel_growth:.2f}x kernel time at "
                f"{max(self.threads)} threads); task granularity is adequate"
            )
        return f"{self.app}: kernel time roughly flat across thread counts"


def scaling_study(
    app: str,
    size: str = "small",
    variant: str = "stress",
    threads: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    min_time: float = 1.0,
    **run_kwargs,
) -> ScalingStudy:
    """Run ``app`` at each thread count and collect per-region scaling."""
    kernel_times: Dict[int, float] = {}
    per_region: Dict[str, Dict[int, float]] = {}
    for n_threads in threads:
        result = run_app(
            app,
            size=size,
            variant=variant,
            n_threads=n_threads,
            instrument=True,
            seed=seed,
            **run_kwargs,
        )
        kernel_times[n_threads] = result.kernel_time
        flat = flat_region_profile(result.profile)
        for region, metrics in flat.items():
            per_region.setdefault(region, {})[n_threads] = metrics["exclusive"]
    regions = [
        RegionScaling(region, times)
        for region, times in sorted(per_region.items())
        if max(times.values()) >= min_time
    ]
    return ScalingStudy(app, tuple(threads), kernel_times, regions)
