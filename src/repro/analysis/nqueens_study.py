"""The Section VI case study on nqueens (Tables III & IV, the speedup).

Three pieces:

* :func:`nqueens_region_times` -- Table III: exclusive execution times of
  the task region, the taskwait and task-create regions inside the task
  construct, and the barrier in the main tree, for varying thread counts.
  The paper's signature: the task region stays flat while taskwait /
  create / barrier grow superlinearly with threads.
* :func:`nqueens_depth_table` -- Table IV: per-recursion-depth mean task
  time, time sum, and task counts via parameter instrumentation.
* :func:`cutoff_speedup` -- the Section VI punch line: cutting task
  creation at level 3 slashes the kernel runtime (paper: 187 s -> 11.5 s
  at 4 threads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.experiment import run_app


@dataclass
class RegionTimesRow:
    """Table III column for one thread count (times in virtual µs)."""

    n_threads: int
    task: float
    taskwait: float
    create_task: float
    barrier: float


def nqueens_region_times(
    size: str = "small",
    threads: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    **run_kwargs,
) -> List[RegionTimesRow]:
    rows = []
    for n_threads in threads:
        result = run_app(
            "nqueens",
            size=size,
            variant="stress",
            n_threads=n_threads,
            instrument=True,
            seed=seed,
            **run_kwargs,
        )
        profile = result.profile
        assert profile is not None
        rows.append(
            RegionTimesRow(
                n_threads=n_threads,
                task=profile.region_time("nqueens_task", "exclusive", "tasks"),
                taskwait=profile.region_time("taskwait", "exclusive", "tasks"),
                create_task=profile.region_time(
                    "create@nqueens_task", "exclusive", "tasks"
                ),
                barrier=profile.region_time("implicit barrier", "exclusive", "main"),
            )
        )
    return rows


@dataclass
class DepthRow:
    """Table IV row: statistics of the tasks at one recursion depth."""

    depth: int
    mean_time_us: float
    total_time_us: float
    task_count: int


def nqueens_depth_table(
    size: str = "small",
    n_threads: int = 4,
    seed: int = 0,
    **run_kwargs,
) -> List[DepthRow]:
    """Table IV via parameter instrumentation (per-depth task sub-trees)."""
    result = run_app(
        "nqueens",
        size=size,
        variant="stress",
        n_threads=n_threads,
        instrument=True,
        seed=seed,
        program_kwargs={"depth_parameter": True},
        **run_kwargs,
    )
    profile = result.profile
    assert profile is not None
    by_parameter = profile.task_trees_by_parameter("nqueens_task")
    rows = []
    for parameter, tree in by_parameter.items():
        depth = parameter[1] if parameter is not None else 0
        stats = tree.metrics.durations
        rows.append(
            DepthRow(
                depth=depth,
                mean_time_us=stats.mean,
                total_time_us=stats.total,
                task_count=stats.count,
            )
        )
    rows.sort(key=lambda row: row.depth)
    return rows


@dataclass
class CutoffComparison:
    n_threads: int
    nocutoff_time: float
    cutoff_time: float
    cutoff_level: int

    @property
    def speedup(self) -> float:
        return self.nocutoff_time / self.cutoff_time


def cutoff_speedup(
    size: str = "small",
    n_threads: int = 4,
    cutoff: int = 3,
    seed: int = 0,
    **run_kwargs,
) -> CutoffComparison:
    """Section VI: uninstrumented kernel time, no-cut-off vs cut-off."""
    nocutoff = run_app(
        "nqueens",
        size=size,
        variant="stress",
        n_threads=n_threads,
        instrument=False,
        seed=seed,
        **run_kwargs,
    )
    with_cutoff = run_app(
        "nqueens",
        size=size,
        variant="optimized",
        n_threads=n_threads,
        instrument=False,
        seed=seed,
        program_kwargs={"cutoff": cutoff},
        **run_kwargs,
    )
    if not (nocutoff.verified and with_cutoff.verified):
        raise AssertionError("nqueens produced a wrong solution count")
    return CutoffComparison(
        n_threads=n_threads,
        nocutoff_time=nocutoff.kernel_time,
        cutoff_time=with_cutoff.kernel_time,
        cutoff_level=cutoff,
    )


def creation_vs_execution(size: str = "small", n_threads: int = 4, seed: int = 0) -> Dict[str, float]:
    """The Section VI first-impression numbers: mean task execution time
    vs mean creation time ("0.30 µs vs 0.86 µs").
    """
    result = run_app(
        "nqueens",
        size=size,
        variant="stress",
        n_threads=n_threads,
        instrument=True,
        seed=seed,
    )
    profile = result.profile
    assert profile is not None
    tree = profile.task_tree("nqueens_task")
    create = tree.find_one("create@nqueens_task")
    instances = tree.metrics.durations.count
    creations = create.metrics.visits
    return {
        "mean_task_exclusive_us": tree.exclusive_time / instances,
        "mean_creation_us": create.metrics.inclusive_time / creations if creations else 0.0,
        "task_instances": instances,
        "creations": creations,
    }
