"""Task-granularity advisor.

Section III of the paper lists what a tool must tell the user: task
runtime statistics, creation time, management overhead, waiting time at
scheduling points -- so the user can "determine the appropriate limits
for task runtime" and "identify tasks that incur performance penalties".

:func:`advise` turns a task-aware profile into concrete findings:

* constructs whose mean instance runtime is below a granularity floor,
* constructs whose creation cost rivals or exceeds their execution time
  (the paper's nqueens diagnosis: creating a task cost 0.86 µs while its
  exclusive work was 0.30 µs),
* scheduling points dominated by idle/management time rather than task
  execution (read off the stub nodes, Fig. 5's interpretation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.events.regions import RegionType
from repro.profiling.profile import Profile


@dataclass
class AdvisorFinding:
    severity: str  # 'info' | 'warning' | 'critical'
    kind: str
    construct: str
    message: str
    metrics: dict

    def __str__(self) -> str:
        return f"[{self.severity}] {self.construct}: {self.message}"


def advise(
    profile: Profile,
    granularity_floor_us: float = 5.0,
    creation_ratio_warn: float = 0.5,
    idle_fraction_warn: float = 0.5,
) -> List[AdvisorFinding]:
    """Analyze a profile and return granularity findings, worst first."""
    findings: List[AdvisorFinding] = []

    for (region, parameter), tree in sorted(
        profile.aggregated_task_trees().items(), key=lambda kv: kv[0][0].name
    ):
        stats = tree.metrics.durations
        if stats.count == 0:
            continue
        construct = tree.display_name()

        # -- tiny tasks -------------------------------------------------
        if stats.mean < granularity_floor_us:
            findings.append(
                AdvisorFinding(
                    severity="warning" if stats.mean > granularity_floor_us / 5 else "critical",
                    kind="small-tasks",
                    construct=construct,
                    message=(
                        f"mean instance runtime {stats.mean:.2f} us is below the "
                        f"{granularity_floor_us:.1f} us granularity floor over "
                        f"{stats.count} instances; raise the cut-off / enlarge tasks"
                    ),
                    metrics={"mean_us": stats.mean, "instances": stats.count},
                )
            )

        # -- creation cost vs execution ----------------------------------
        create_nodes = tree.find(
            predicate=lambda n: n.region.region_type is RegionType.TASK_CREATE
        )
        creation_time = sum(n.metrics.inclusive_time for n in create_nodes)
        creations = sum(n.metrics.visits for n in create_nodes)
        if creations and stats.count:
            mean_creation = creation_time / creations
            mean_exclusive = tree.exclusive_time / stats.count
            if mean_exclusive > 0 and mean_creation >= creation_ratio_warn * mean_exclusive:
                severity = "critical" if mean_creation >= mean_exclusive else "warning"
                findings.append(
                    AdvisorFinding(
                        severity=severity,
                        kind="creation-dominates",
                        construct=construct,
                        message=(
                            f"creating a task costs {mean_creation:.2f} us vs "
                            f"{mean_exclusive:.2f} us mean exclusive work; task "
                            "creation dominates -- create fewer, larger tasks"
                        ),
                        metrics={
                            "mean_creation_us": mean_creation,
                            "mean_exclusive_us": mean_exclusive,
                        },
                    )
                )

    # -- idle scheduling points -------------------------------------------
    for thread_id in range(profile.n_threads):
        for node in profile.main_trees[thread_id].walk():
            if node.region.region_type not in (
                RegionType.BARRIER,
                RegionType.IMPLICIT_BARRIER,
                RegionType.TASKWAIT,
                RegionType.TASKYIELD,
            ):
                continue
            total = node.metrics.inclusive_time
            if total <= 0:
                continue
            stub_time = sum(
                c.metrics.inclusive_time for c in node.children.values() if c.is_stub
            )
            idle_fraction = 1.0 - stub_time / total
            if idle_fraction >= idle_fraction_warn and total > 1.0:
                findings.append(
                    AdvisorFinding(
                        severity="info",
                        kind="idle-scheduling-point",
                        construct=f"thread {thread_id}: {node.path_names()}",
                        message=(
                            f"{idle_fraction * 100:.0f}% of {total:.1f} us at this "
                            "scheduling point is management/idle time, not task "
                            "execution (cf. Fig. 5)"
                        ),
                        metrics={
                            "idle_fraction": idle_fraction,
                            "total_us": total,
                            "stub_us": stub_time,
                        },
                    )
                )

    order = {"critical": 0, "warning": 1, "info": 2}
    findings.sort(key=lambda f: (order[f.severity], f.construct))
    return findings
