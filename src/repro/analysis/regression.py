"""Text rendering of archive baselines and sentinel verdicts.

The archive subsystem (:mod:`repro.archive`) produces structured
objects; this module turns them into the fixed-width tables the CLI and
CI logs show, using the same :func:`repro.analysis.tables.format_table`
the paper-artifact commands use.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.tables import format_table


def archive_table(records: Sequence, title: Optional[str] = None) -> str:
    """One row per archived run (``repro archive list``)."""
    rows: List[list] = []
    for record in records:
        meta = record.meta
        wall = "" if meta.wall_time_us is None else f"{meta.wall_time_us:.0f}"
        rows.append(
            [
                record.run_id,
                record.sha256[:12],
                meta.kernel,
                meta.size,
                meta.variant,
                meta.n_threads,
                meta.seed,
                wall,
                ",".join(record.tags),
            ]
        )
    return format_table(
        ["run", "sha256", "kernel", "size", "variant", "thr", "seed",
         "wall [us]", "tags"],
        rows,
        title=title,
    )


def baseline_table(baseline, metric: str = "exclusive",
                   title: Optional[str] = None) -> str:
    """Per-region baseline statistics (``repro archive baseline``)."""
    rows: List[list] = []
    for region in baseline.region_names():
        stats = baseline.stats(region, metric)
        if stats is None:
            continue
        rows.append(
            [
                region,
                f"{stats.count}/{baseline.n_runs}",
                f"{stats.mean:.2f}",
                f"{stats.std:.2f}",
                f"{stats.minimum:.2f}",
                f"{stats.maximum:.2f}",
            ]
        )
    if title is None:
        title = (
            f"baseline over {baseline.n_runs} run(s) "
            f"[{metric}, virtual us]"
        )
    return format_table(
        ["region", "runs", "mean", "std", "min", "max"], rows, title=title
    )


def sentinel_table(report, *, include_ok: bool = False,
                   title: Optional[str] = None) -> str:
    """The verdict table of one sentinel comparison.

    ``include_ok=False`` (the default) keeps CI logs focused on what
    changed; the summary line still counts the ok regions.
    """
    rows: List[list] = []
    for verdict in report.verdicts:
        if verdict.verdict == "ok" and not include_ok:
            continue
        if verdict.verdict == "appeared":
            base = "-"
            z = "-"
            ratio = "[new]"
        elif verdict.verdict == "vanished":
            base = f"{verdict.mean:.2f}"
            z = "-"
            ratio = "[gone]"
        else:
            base = f"{verdict.mean:.2f} ± {verdict.std:.2f}"
            z = "-" if verdict.zscore is None else f"{verdict.zscore:+.1f}"
            ratio = f"{verdict.ratio:.2f}x"
        rows.append(
            [
                verdict.region,
                verdict.metric,
                verdict.verdict,
                base,
                f"{verdict.candidate:.2f}",
                ratio,
                z,
            ]
        )
    table = format_table(
        ["region", "metric", "verdict", "baseline", "candidate", "ratio", "z"],
        rows,
        title=title,
    )
    if not rows:
        table = "(no regions beyond thresholds)"
        if title:
            table = f"{title}\n{table}"
    return table + "\n" + report.summary()


def fsck_table(report, title: Optional[str] = None) -> str:
    """Per-issue fsck verdicts (``repro archive fsck``)."""
    rows: List[list] = []
    for issue in report.issues:
        rows.append(
            [
                issue.kind,
                issue.run_id or "",
                (issue.sha256 or "")[:12],
                issue.action or ("-" if issue.repaired else "unrepaired"),
                issue.detail,
            ]
        )
    table = format_table(
        ["issue", "run", "sha256", "action", "detail"],
        rows,
        title=title,
    )
    if not rows:
        table = "(archive is clean)"
        if title:
            table = f"{title}\n{table}"
    counts = report.counts()
    summary = (
        f"fsck: {report.objects_checked} object(s), "
        f"{report.records_checked} record(s) checked; "
        + (
            ", ".join(f"{counts[kind]} {kind}" for kind in sorted(counts))
            if counts
            else "no issues"
        )
    )
    if report.repair:
        left = len(report.unrepaired)
        summary += (
            "; all issues repaired" if not left else f"; {left} unrepaired"
        )
        if report.index_rewritten:
            summary += " (index rebuilt)"
    return table + "\n" + summary


def replay_table(report, title: Optional[str] = None) -> str:
    """One :class:`~repro.recorder.replay.DivergenceReport` as a table.

    Shaped like the sentinel verdicts (``repro verify`` shares its exit
    semantics): a fact table, the reasons/differences, and a one-line
    verdict the CI logs can grep for.
    """
    rows = [
        ["records", str(report.records)],
        ["chunks", str(report.chunks)],
        ["stream", "complete" if report.complete else "partial"],
        ["replay", "strict" if report.strict else "lenient"],
        ["expected", (report.expected_sha or "-")[:12]],
        ["replayed", (report.actual_sha or "-")[:12]],
    ]
    table = format_table(["fact", "value"], rows, title=title)
    lines = [table]
    for reason in report.reasons:
        lines.append(f"  note: {reason}")
    for difference in report.differences:
        lines.append(f"  diff: {difference}")
    if not report.usable:
        verdict = "verify: UNUSABLE (recording cannot answer the question)"
    elif report.matched:
        verdict = "verify: MATCH (replay reproduces the cube byte-identically)"
    else:
        verdict = "verify: DIVERGED (silent corruption or nondeterminism)"
    return "\n".join(lines + [verdict])
