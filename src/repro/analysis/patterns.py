"""Automatic performance-pattern detection (the Scalasca analogue).

The paper's conclusion: "Automated trace analysis, like Scalasca does for
other programming paradigms, might provide some additional information,
and/or highlight particular performance problems."  This module detects
named task-parallel patterns from a run's profile and (optionally)
recorded trace, each with a severity score in [0, 1] proportional to the
time it explains:

* ``small-task-storm``     -- most task instances are below a granularity
  floor while management time rivals useful work (the fib/nqueens
  no-cut-off disease);
* ``creation-bottleneck``  -- task creation concentrated on few threads
  (Section III's third problem);
* ``starvation``           -- threads spend a large fraction of
  scheduling-point time idle with no tasks to run (load imbalance or too
  few tasks);
* ``late-producer``        -- tasks only become available long after the
  team reached the scheduling point (trace-based; needs recorded events);
* ``lock-thrashing``       -- the runtime pool lock is contended on most
  acquisitions (the Fig. 15 regime).

Each detection carries the evidence it was computed from, so reports can
show *why* a pattern fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.bottleneck import creation_balance
from repro.analysis.traces import sync_point_breakdown
from repro.profiling.profile import Profile


@dataclass
class PatternMatch:
    name: str
    severity: float  # 0..1
    description: str
    evidence: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.severity:.2f}] {self.name}: {self.description}"


def detect_patterns(
    result,
    granularity_floor_us: float = 5.0,
    severity_floor: float = 0.1,
) -> List[PatternMatch]:
    """Run all detectors on an ExperimentResult/ParallelResult.

    Returns matches with severity >= ``severity_floor``, strongest first.
    """
    parallel = getattr(result, "parallel", result)
    profile = getattr(result, "profile", None) or parallel.profile
    if profile is None:
        raise ValueError("pattern detection requires an instrumented run")
    matches: List[PatternMatch] = []
    matches.extend(_small_task_storm(parallel, profile, granularity_floor_us))
    matches.extend(_creation_bottleneck(profile, parallel))
    matches.extend(_starvation(profile, parallel))
    matches.extend(_lock_thrashing(parallel))
    if parallel.trace is not None:
        matches.extend(_late_producer(parallel))
    matches = [m for m in matches if m.severity >= severity_floor]
    matches.sort(key=lambda m: m.severity, reverse=True)
    return matches


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------
def _small_task_storm(parallel, profile: Profile, floor_us: float) -> List[PatternMatch]:
    total_instances = 0
    small_instances = 0
    for per_thread in profile.task_trees:
        for tree in per_thread.values():
            stats = tree.metrics.durations
            total_instances += stats.count
            if stats.count == 0:
                continue
            # Use mean *exclusive* work per instance: instance durations
            # are inflated by lock waits under contention, which would
            # mask the smallness of the tasks themselves.
            mean_exclusive = tree.exclusive_time / stats.count
            if mean_exclusive < floor_us:
                small_instances += stats.count
    if total_instances == 0:
        return []
    work = parallel.total("work")
    mgmt = parallel.total("mgmt")
    small_share = small_instances / total_instances
    mgmt_share = mgmt / (work + mgmt) if (work + mgmt) > 0 else 0.0
    severity = small_share * mgmt_share
    return [
        PatternMatch(
            name="small-task-storm",
            severity=severity,
            description=(
                f"{small_share * 100:.0f}% of {total_instances} task instances "
                f"average below {floor_us:.0f} us while management consumes "
                f"{mgmt_share * 100:.0f}% of (work+management) time"
            ),
            evidence={
                "small_share": small_share,
                "mgmt_share": mgmt_share,
                "instances": total_instances,
            },
        )
    ]


def _creation_bottleneck(profile: Profile, parallel) -> List[PatternMatch]:
    balance = creation_balance(profile)
    if balance.total_creations < 8 or profile.n_threads < 2:
        return []
    creation_time = sum(balance.creation_time_per_thread)
    duration = parallel.duration or 1.0
    time_share = min(max(balance.creation_time_per_thread) / duration, 1.0)
    severity = balance.imbalance * time_share
    return [
        PatternMatch(
            name="creation-bottleneck",
            severity=severity,
            description=(
                f"creation imbalance {balance.imbalance:.2f}; the busiest "
                f"producer spent {time_share * 100:.0f}% of the region "
                "creating tasks"
            ),
            evidence={
                "imbalance": balance.imbalance,
                "creations_per_thread": balance.creations_per_thread,
                "creation_time_us": creation_time,
            },
        )
    ]


def _starvation(profile: Profile, parallel) -> List[PatternMatch]:
    total_sched = 0.0
    idle = 0.0
    for thread_id in range(profile.n_threads):
        for node in profile.main_trees[thread_id].walk():
            if node.region.region_type.is_scheduling_point():
                stub = sum(
                    c.metrics.inclusive_time
                    for c in node.children.values()
                    if c.is_stub
                )
                total_sched += node.metrics.inclusive_time
                idle += node.metrics.inclusive_time - stub
    if total_sched <= 0:
        return []
    idle_share = idle / total_sched
    region_share = total_sched / (parallel.duration * profile.n_threads or 1.0)
    severity = idle_share * min(region_share, 1.0)
    return [
        PatternMatch(
            name="starvation",
            severity=severity,
            description=(
                f"{idle_share * 100:.0f}% of scheduling-point time is "
                "idle/management rather than task execution"
            ),
            evidence={"idle_share": idle_share, "sched_time_us": total_sched},
        )
    ]


def _lock_thrashing(parallel) -> List[PatternMatch]:
    stats = parallel.lock_stats
    acquisitions = stats.get("acquisitions", 0)
    contended = stats.get("contended", 0)
    if acquisitions < 16:
        return []
    contention_rate = contended / acquisitions
    return [
        PatternMatch(
            name="lock-thrashing",
            severity=contention_rate,
            description=(
                f"{contention_rate * 100:.0f}% of {acquisitions} runtime-lock "
                "acquisitions had to queue (task management serializes)"
            ),
            evidence={"acquisitions": acquisitions, "contended": contended},
        )
    ]


def _late_producer(parallel) -> List[PatternMatch]:
    visits = sync_point_breakdown(parallel.trace)
    if not visits:
        return []
    # For barrier visits with fragments: how much time passed before the
    # FIRST fragment, relative to the visit? Large values mean threads
    # arrived long before work existed.
    waits = []
    for visit in visits:
        if visit.total <= 0:
            continue
        if visit.fragments == 0:
            continue
        pre_share = visit.management / visit.total
        waits.append(pre_share)
    if not waits:
        return []
    mean_pre = sum(waits) / len(waits)
    return [
        PatternMatch(
            name="late-producer",
            severity=mean_pre * 0.5,  # pre-fragment gaps include dispatch cost
            description=(
                f"on average {mean_pre * 100:.0f}% of each scheduling-point "
                "visit passes in gaps before/between task fragments "
                "(tasks arrive late or dispatch is slow)"
            ),
            evidence={"mean_pre_fragment_share": mean_pre, "visits": len(waits)},
        )
    ]
