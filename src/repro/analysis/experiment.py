"""Running one experiment: program x configuration -> everything measured."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.bots.common import BotsProgram, first_result
from repro.bots.registry import get_program
from repro.profiling.profile import Profile
from repro.runtime.config import RuntimeConfig
from repro.runtime.costs import CostModel
from repro.runtime.runtime import OpenMPRuntime, ParallelResult


@dataclass
class ExperimentResult:
    """One run of one program under one configuration."""

    program_label: str
    n_threads: int
    instrumented: bool
    seed: int
    #: virtual duration of the tasking kernel's parallel region
    kernel_time: float
    #: the functional result verified against ground truth?
    verified: bool
    parallel: ParallelResult
    profile: Optional[Profile]
    meta: Dict[str, Any] = field(default_factory=dict)
    #: the full configuration the run used; the profile archive
    #: fingerprints it to group repetitions into baselines
    config: Optional[RuntimeConfig] = None

    @property
    def result_value(self) -> Any:
        return first_result(self.parallel)

    def bucket_total(self, bucket: str) -> float:
        return self.parallel.total(bucket)


def run_program(
    program: BotsProgram,
    n_threads: int = 4,
    instrument: bool = True,
    seed: int = 0,
    costs: Optional[CostModel] = None,
    record_events: bool = False,
    **config_overrides: Any,
) -> ExperimentResult:
    """Run a (fresh!) BOTS program under the given configuration.

    Programs with in-place state (sparselu, floorplan) are single-use;
    build a new one per call -- :func:`run_app` does this for you.
    """
    config_kwargs: Dict[str, Any] = dict(
        n_threads=n_threads,
        instrument=instrument,
        seed=seed,
        record_events=record_events,
    )
    if costs is not None:
        config_kwargs["costs"] = costs
    config_kwargs.update(config_overrides)
    config = RuntimeConfig(**config_kwargs)

    runtime = OpenMPRuntime(config)
    parallel = runtime.parallel(program.body, name=program.label)
    return ExperimentResult(
        program_label=program.label,
        n_threads=n_threads,
        instrumented=instrument,
        seed=seed,
        kernel_time=parallel.duration,
        verified=program.verify(parallel),
        parallel=parallel,
        profile=parallel.profile,
        meta=dict(program.meta),
        config=config,
    )


def run_app(
    name: str,
    size: str = "small",
    variant: str = "optimized",
    n_threads: int = 4,
    instrument: bool = True,
    seed: int = 0,
    costs: Optional[CostModel] = None,
    record_events: bool = False,
    program_kwargs: Optional[dict] = None,
    **config_overrides: Any,
) -> ExperimentResult:
    """Build a fresh program from the registry and run it."""
    program = get_program(name, size=size, variant=variant, **(program_kwargs or {}))
    return run_program(
        program,
        n_threads=n_threads,
        instrument=instrument,
        seed=seed,
        costs=costs,
        record_events=record_events,
        **config_overrides,
    )
