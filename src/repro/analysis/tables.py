"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: Optional[str] = None,
    align_right: bool = True,
) -> str:
    """Render an ASCII table.

    Cells are stringified; numeric-looking columns right-align by default.
    """
    materialized: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if align_right else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_percent(fraction: float, signed: bool = True) -> str:
    """0.063 -> '+6.3%'."""
    sign = "+" if signed and fraction >= 0 else ""
    return f"{sign}{fraction * 100:.1f}%"
