"""The paper's evaluation methodology, automated.

* :mod:`repro.analysis.experiment` -- run one BOTS program under one
  configuration and collect everything (kernel time, profile, stats).
* :mod:`repro.analysis.overhead` -- instrumented-vs-uninstrumented
  overhead (Figs. 13/14), runtime scaling (Fig. 15), seed ensembles for
  the floorplan bimodality.
* :mod:`repro.analysis.taskstats` -- mean task time and task counts
  (Table I).
* :mod:`repro.analysis.concurrency` -- maximum concurrently executing
  tasks per thread (Table II).
* :mod:`repro.analysis.nqueens_study` -- the Section VI case study
  (Table III, Table IV, the cut-off speedup).
* :mod:`repro.analysis.advisor` -- the granularity advisor built from the
  paper's Section III metric recommendations.
* :mod:`repro.analysis.tables` / :mod:`repro.analysis.charts` -- ASCII
  rendering of tables and bar charts for the benchmark reports.
"""

from repro.analysis.experiment import ExperimentResult, run_app, run_program
from repro.analysis.overhead import (
    OverheadPoint,
    event_cost_attribution,
    measure_overhead,
    overhead_sweep,
    runtime_scaling,
    substrate_overhead_rows,
)
from repro.analysis.taskstats import TaskStatsRow, task_statistics
from repro.analysis.concurrency import max_concurrent_tasks
from repro.analysis.nqueens_study import (
    cutoff_speedup,
    nqueens_depth_table,
    nqueens_region_times,
)
from repro.analysis.advisor import AdvisorFinding, advise
from repro.analysis.bottleneck import (
    CreationBalance,
    creation_balance,
    diagnose_creation_bottleneck,
)
from repro.analysis.regression import (
    archive_table,
    baseline_table,
    replay_table,
    sentinel_table,
)
from repro.analysis.report import generate_report
from repro.analysis.tables import format_table
from repro.analysis.charts import ascii_bar_chart
from repro.analysis.traces import (
    Fragment,
    SchedulingLatency,
    SyncPointVisit,
    management_ratio,
    render_timeline,
    scheduling_latencies,
    sync_point_breakdown,
    task_timeline,
)

__all__ = [
    "ExperimentResult",
    "run_app",
    "run_program",
    "OverheadPoint",
    "measure_overhead",
    "overhead_sweep",
    "runtime_scaling",
    "substrate_overhead_rows",
    "event_cost_attribution",
    "TaskStatsRow",
    "task_statistics",
    "max_concurrent_tasks",
    "nqueens_region_times",
    "nqueens_depth_table",
    "cutoff_speedup",
    "AdvisorFinding",
    "advise",
    "CreationBalance",
    "creation_balance",
    "diagnose_creation_bottleneck",
    "generate_report",
    "archive_table",
    "baseline_table",
    "replay_table",
    "sentinel_table",
    "format_table",
    "ascii_bar_chart",
    "Fragment",
    "SchedulingLatency",
    "SyncPointVisit",
    "management_ratio",
    "render_timeline",
    "scheduling_latencies",
    "sync_point_breakdown",
    "task_timeline",
]
