"""Task-creation bottleneck analysis (paper Section III, third problem).

"On larger scales, the task creation may become a bottleneck if tasks
are created only by a small number of threads."  (Schmidl et al. [16],
quoted in the paper's problem analysis.)

The profile already contains what is needed: task-creation regions are
measured in the *creating* context, so counting create-region visits per
thread (implicit trees + that thread's task trees) yields the creation
distribution.  :func:`creation_balance` computes it plus an imbalance
metric; :func:`diagnose_creation_bottleneck` turns it into a finding.

The BOTS sparselu variants are the textbook contrast: `single` has one
producer thread (imbalance 1.0), `for` distributes creation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.events.regions import RegionType
from repro.profiling.profile import Profile


@dataclass
class CreationBalance:
    """Task-creation distribution over threads."""

    #: create-region visits per thread (index = thread id)
    creations_per_thread: List[int]
    #: time spent creating per thread (inclusive create-region time)
    creation_time_per_thread: List[float]

    @property
    def total_creations(self) -> int:
        return sum(self.creations_per_thread)

    @property
    def imbalance(self) -> float:
        """0.0 = perfectly even, 1.0 = a single thread creates everything.

        Defined as ``(max_share - 1/T) / (1 - 1/T)`` over creation counts.
        """
        total = self.total_creations
        n = len(self.creations_per_thread)
        if total == 0 or n <= 1:
            return 0.0
        max_share = max(self.creations_per_thread) / total
        even_share = 1.0 / n
        return (max_share - even_share) / (1.0 - even_share)

    @property
    def dominant_thread(self) -> Optional[int]:
        if self.total_creations == 0:
            return None
        return max(
            range(len(self.creations_per_thread)),
            key=lambda t: self.creations_per_thread[t],
        )


def creation_balance(profile: Profile) -> CreationBalance:
    """Count create-region visits per creating thread."""
    counts = [0] * profile.n_threads
    times = [0.0] * profile.n_threads
    for thread_id in range(profile.n_threads):
        roots = [profile.main_trees[thread_id]]
        roots.extend(profile.task_trees[thread_id].values())
        for root in roots:
            for node in root.walk():
                if node.region.region_type is RegionType.TASK_CREATE:
                    counts[thread_id] += node.metrics.visits
                    times[thread_id] += node.metrics.inclusive_time
    return CreationBalance(counts, times)


def diagnose_creation_bottleneck(
    profile: Profile,
    imbalance_warn: float = 0.5,
    min_creations: int = 8,
) -> Optional[str]:
    """A human-readable finding, or None if creation is balanced enough.

    Note: concentrated creation is only a *bottleneck* at scale; with few
    threads it is often fine (the paper's sparselu single version is the
    recommended one at 8 threads).  The message says so.
    """
    balance = creation_balance(profile)
    if balance.total_creations < min_creations:
        return None
    if balance.imbalance < imbalance_warn:
        return None
    dominant = balance.dominant_thread
    share = balance.creations_per_thread[dominant] / balance.total_creations
    return (
        f"thread {dominant} created {share * 100:.0f}% of all "
        f"{balance.total_creations} tasks (imbalance "
        f"{balance.imbalance:.2f}); at larger scales serialized task "
        "creation becomes a bottleneck -- consider distributing creation "
        "(e.g. the sparselu 'for' pattern) or hierarchical task spawning"
    )
