"""Task granularity statistics (paper Table I).

"Mean execution time over all tasks and number of tasks for code versions
without cut-off."  The numbers come straight out of the task-aware
profile: the aggregate task trees' duration accumulators hold one sample
per completed instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.analysis.experiment import ExperimentResult, run_app
from repro.profiling.metrics import StatAccumulator


@dataclass
class TaskStatsRow:
    """One Table I row."""

    code: str
    mean_time_us: float
    min_time_us: float
    max_time_us: float
    task_count: int
    total_time_us: float

    def __repr__(self) -> str:
        return (
            f"TaskStatsRow({self.code}: mean={self.mean_time_us:.2f}us, "
            f"n={self.task_count})"
        )


def combined_task_stats(result: ExperimentResult) -> StatAccumulator:
    """Fold the per-construct instance statistics of a run into one."""
    if result.profile is None:
        raise ValueError("task statistics require an instrumented run")
    combined = StatAccumulator()
    for per_thread in result.profile.task_trees:
        for tree in per_thread.values():
            combined.merge(tree.metrics.durations)
    return combined


def task_statistics(
    apps: Iterable[str],
    size: str = "small",
    variant: str = "stress",
    n_threads: int = 4,
    seed: int = 0,
    include_perturbation: bool = False,
    **run_kwargs,
) -> List[TaskStatsRow]:
    """Table I: mean task execution time and task count per app.

    By default the statistics are collected with the per-event
    instrumentation cost set to zero -- the simulator can observe without
    perturbing, so the reported task granularities are the *application's*,
    not the measurement system's.  Pass ``include_perturbation=True`` to
    measure what an instrumented run would see instead.
    """
    rows = []
    for app in apps:
        costs = run_kwargs.pop("costs", None)
        if costs is None:
            from repro.runtime.costs import CostModel

            costs = CostModel()
        if not include_perturbation:
            costs = costs.with_instrumentation_cost(0.0)
        result = run_app(
            app,
            size=size,
            variant=variant,
            n_threads=n_threads,
            instrument=True,
            seed=seed,
            costs=costs,
            **run_kwargs,
        )
        stats = combined_task_stats(result)
        rows.append(
            TaskStatsRow(
                code=app,
                mean_time_us=stats.mean,
                min_time_us=stats.minimum if stats.count else 0.0,
                max_time_us=stats.maximum if stats.count else 0.0,
                task_count=stats.count,
                total_time_us=stats.total,
            )
        )
    return rows


def granularity_ratios(rows: List[TaskStatsRow]) -> Dict[str, float]:
    """Each app's mean task time relative to the smallest-task app.

    The paper's Table I argument is about *ratios*: strassen's tasks are
    ~two orders of magnitude larger than fib's.
    """
    smallest = min(row.mean_time_us for row in rows)
    return {row.code: row.mean_time_us / smallest for row in rows}
