"""ASCII bar charts for the figure-reproducing benchmarks.

The paper's Figs. 13-15 are bar charts; the benchmark harness prints
them as horizontal ASCII bars so the regenerated "figure" is directly
comparable in a terminal / CI log.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def ascii_bar_chart(
    data: Dict[str, float],
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
    baseline: float = 0.0,
) -> str:
    """Horizontal bar chart; negative values extend left of the axis.

    ``baseline`` shifts the zero point (e.g. 100 for %-of-max charts).
    """
    if not data:
        return title or "(empty chart)"
    label_width = max(len(k) for k in data)
    values = [v - baseline for v in data.values()]
    span = max(abs(v) for v in values) or 1.0
    scale = width / span
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, raw in data.items():
        value = raw - baseline
        bar_len = int(round(abs(value) * scale))
        bar = ("-" if value < 0 else "#") * bar_len
        lines.append(f"{label.ljust(label_width)} | {bar} {raw:.1f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Dict[str, Dict[int, float]],
    width: int = 40,
    unit: str = "%",
    title: Optional[str] = None,
) -> str:
    """Fig. 13/14 shape: per app, one bar per thread count."""
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    all_values = [v for series in groups.values() for v in series.values()]
    span = max((abs(v) for v in all_values), default=1.0) or 1.0
    scale = width / span
    for app, series in groups.items():
        lines.append(app)
        for n_threads, value in sorted(series.items()):
            bar_len = int(round(abs(value) * scale))
            bar = ("-" if value < 0 else "#") * bar_len
            lines.append(f"  {n_threads:>2} thr | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compact trend rendering for test/debug output."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(
        blocks[int((v - lo) / (hi - lo) * (len(blocks) - 1))] for v in values
    )
