"""Overhead evaluation (paper Section V-A, Figs. 13-15).

The paper's procedure: run each BOTS code instrumented and uninstrumented
at 1/2/4/8 threads; overhead is the relative increase of the tasking
kernel's runtime.  We reproduce it in virtual time, which removes the
measurement noise of the original (but we keep the seed-ensemble
machinery, because *schedule* variability -- the floorplan class A/B
effect -- is real in the simulation too).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.experiment import run_app


@dataclass
class OverheadPoint:
    """Overhead of one app at one thread count."""

    app: str
    n_threads: int
    uninstrumented: float
    instrumented: float
    #: per-seed raw samples (kernel times)
    uninstrumented_samples: List[float] = field(default_factory=list)
    instrumented_samples: List[float] = field(default_factory=list)

    @property
    def overhead(self) -> float:
        """Relative overhead, e.g. 0.06 for 6 %."""
        if self.uninstrumented == 0:
            return 0.0
        return self.instrumented / self.uninstrumented - 1.0

    @property
    def overhead_pct(self) -> float:
        return self.overhead * 100.0

    def __repr__(self) -> str:
        return (
            f"OverheadPoint({self.app}, T={self.n_threads}, "
            f"{self.overhead_pct:+.1f}%)"
        )


def measure_overhead(
    name: str,
    size: str = "small",
    variant: str = "optimized",
    threads: Sequence[int] = (1, 2, 4, 8),
    seeds: Sequence[int] = (0,),
    aggregate: str = "median",
    **run_kwargs,
) -> List[OverheadPoint]:
    """Fig. 13/14 measurement for one app: overhead per thread count.

    With several seeds the per-configuration kernel times are aggregated
    by ``aggregate`` (``'median'`` or ``'mean'``); the raw samples stay on
    the point for distribution analyses (floorplan classes).
    """
    if aggregate not in ("median", "mean"):
        raise ValueError(f"aggregate must be 'median' or 'mean', got {aggregate!r}")
    combine = statistics.median if aggregate == "median" else statistics.fmean
    points = []
    for n_threads in threads:
        uninstrumented = []
        instrumented = []
        for seed in seeds:
            for instrument, sink in ((False, uninstrumented), (True, instrumented)):
                result = run_app(
                    name,
                    size=size,
                    variant=variant,
                    n_threads=n_threads,
                    instrument=instrument,
                    seed=seed,
                    **run_kwargs,
                )
                if not result.verified:
                    raise AssertionError(
                        f"{name} produced a wrong result at T={n_threads}, "
                        f"seed={seed}, instrument={instrument}"
                    )
                sink.append(result.kernel_time)
        points.append(
            OverheadPoint(
                app=name,
                n_threads=n_threads,
                uninstrumented=combine(uninstrumented),
                instrumented=combine(instrumented),
                uninstrumented_samples=uninstrumented,
                instrumented_samples=instrumented,
            )
        )
    return points


def overhead_sweep(
    apps: Iterable[str],
    size: str = "small",
    variant: str = "optimized",
    threads: Sequence[int] = (1, 2, 4, 8),
    seeds: Sequence[int] = (0,),
    **run_kwargs,
) -> Dict[str, List[OverheadPoint]]:
    """The full Fig. 13 (variant='optimized') / Fig. 14 ('stress') grid."""
    return {
        app: measure_overhead(
            app, size=size, variant=variant, threads=threads, seeds=seeds, **run_kwargs
        )
        for app in apps
    }


def runtime_scaling(
    name: str,
    size: str = "small",
    variant: str = "stress",
    threads: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    **run_kwargs,
) -> Dict[int, float]:
    """Fig. 15: uninstrumented kernel time per thread count, as % of max."""
    times = {}
    for n_threads in threads:
        result = run_app(
            name,
            size=size,
            variant=variant,
            n_threads=n_threads,
            instrument=False,
            seed=seed,
            **run_kwargs,
        )
        times[n_threads] = result.kernel_time
    peak = max(times.values())
    return {t: 100.0 * v / peak for t, v in times.items()}


def classify_bimodal(
    samples: Sequence[float], gap_factor: float = 1.5
) -> Optional[Tuple[List[float], List[float]]]:
    """Split samples into two classes if a clear gap exists (Section V-A).

    The paper found floorplan runs clustering into a fast class A (work
    evenly distributed) and a slow class B (half the threads idle).
    Returns ``(class_a, class_b)`` sorted fast-first, or ``None`` when the
    distribution is unimodal (largest adjacent gap below ``gap_factor``).
    """
    if len(samples) < 2:
        return None
    ordered = sorted(samples)
    gaps = [(ordered[i + 1] / ordered[i], i) for i in range(len(ordered) - 1) if ordered[i] > 0]
    if not gaps:
        return None
    largest, index = max(gaps)
    if largest < gap_factor:
        return None
    return ordered[: index + 1], ordered[index + 1 :]


# ----------------------------------------------------------------------
# Per-substrate overhead attribution (measurement substrate architecture)
# ----------------------------------------------------------------------
def substrate_overhead_rows(result) -> List[dict]:
    """Per-substrate dispatch/overhead accounting of one run.

    ``result`` is a :class:`~repro.runtime.runtime.ParallelResult` (or an
    ``ExperimentResult`` carrying one as ``.parallel``).  Returns one row
    per attached substrate -- events received, declared per-event cost,
    charged virtual µs, and that charge as a share of the total
    instrumentation bucket -- so the paper's Section V overhead becomes
    attributable per consumer.
    """
    parallel = getattr(result, "parallel", result)
    report = parallel.extra.get("substrates") or {}
    instr_total = parallel.total("instr")
    rows = []
    for name, info in report.items():
        charged = info["charged_us"]
        rows.append(
            {
                "substrate": name,
                "events": info["events"],
                "per_event_cost": info["per_event_cost"],
                "charged_us": charged,
                "share_of_instr": (charged / instr_total) if instr_total > 0 else 0.0,
                "quarantined": info["quarantined"],
                "error": info["error"],
            }
        )
    return rows


def event_cost_attribution(stats_artifact: dict, per_event_cost: float) -> dict:
    """Split a per-event cost across event kinds and threads.

    ``stats_artifact`` is the :class:`~repro.substrates.stats.StatsSubstrate`
    artifact (``total_events`` / ``per_kind`` / ``per_thread``).  With the
    run's effective per-event cost this turns raw counts into the
    overhead breakdown the paper's Section V reasons about: which event
    kinds (task management vs region bracketing) and which threads paid
    for the measurement.
    """
    per_kind = {
        kind: count * per_event_cost
        for kind, count in stats_artifact.get("per_kind", {}).items()
        if kind != "metric"  # metrics piggyback: no cost of their own
    }
    per_thread = [
        count * per_event_cost for count in stats_artifact.get("per_thread", [])
    ]
    return {
        "total_us": stats_artifact.get("total_events", 0) * per_event_cost,
        "per_kind_us": per_kind,
        "per_thread_us": per_thread,
    }
