"""Crash-safe filesystem helpers.

Every artifact the package writes to disk -- exported profiles, reports,
supervisor summaries -- goes through :func:`atomic_write`, so an
interrupted process (Ctrl-C, SIGKILL, power loss) can never leave a
truncated or half-written file where a previous good one stood: the new
content is staged in a temporary file in the *same directory* (same
filesystem, so the rename is atomic) and moved into place with
``os.replace`` only after it has been flushed and fsync'd.
"""

from __future__ import annotations

import os
import tempfile
from typing import Union


def fsync_directory(directory: Union[str, os.PathLike]) -> None:
    """Flush a directory entry so a completed rename survives a crash.

    Best-effort: some filesystems (and all of Windows) refuse to fsync a
    directory handle; that only weakens durability, not atomicity.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(
    path: Union[str, os.PathLike],
    data: Union[str, bytes],
    *,
    encoding: str = "utf-8",
    durable: bool = True,
) -> None:
    """Write ``data`` to ``path`` atomically (temp file + ``os.replace``).

    Readers never observe a partial file: they see either the previous
    content or the complete new content.  On any failure the temporary
    file is removed and the original file is left untouched.

    ``durable=True`` additionally fsyncs the file (and its directory)
    before/after the rename so the write survives power loss, not just
    process death.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
    )
    try:
        mode = "wb" if isinstance(data, bytes) else "w"
        kwargs = {} if isinstance(data, bytes) else {"encoding": encoding}
        with os.fdopen(fd, mode, **kwargs) as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(directory)
