"""Salvage accounting: how complete is a profile built from damaged input?

When the measurement stack runs in lenient mode it keeps going where the
strict paper algorithm would abort, but it must never *silently* present
a partial profile as a complete one.  :class:`SalvageReport` is the
ledger of everything the lenient path did -- events dropped, events
repaired, task instances quarantined -- and travels with the resulting
:class:`~repro.profiling.profile.Profile` through export and rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set


@dataclass
class SalvageReport:
    """Completeness ledger attached to a profile built in lenient mode."""

    #: listener events delivered to the lenient profiler
    events_seen: int = 0
    #: events the lenient profiler had to discard (inconsistent state)
    events_dropped: int = 0
    #: events synthesized or rewritten by :func:`repro.events.repair.repair_stream`
    events_repaired: int = 0
    #: task instances that ended cleanly and were merged into the profile
    instances_completed: int = 0
    #: task instances evicted because their event history was unrecoverable
    instances_quarantined: Set[int] = field(default_factory=set)
    #: human-readable notes, one per incident (violations, repairs, faults)
    notes: List[str] = field(default_factory=list)
    #: the run was stopped by the deadlock watchdog
    watchdog_fired: bool = False
    #: description of the fault plan that was armed, if any
    fault_summary: Optional[str] = None
    #: the error that aborted the live run, if it did not complete
    run_error: Optional[str] = None
    #: resource-governor ladder transitions (PressureIncident dicts, in
    #: order); non-empty whenever a memory budget forced degradation
    pressure_incidents: List[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once the governor reduced fidelity (L2 aggregates-only+).

        L1 (eager pool release) changes only allocator behavior, not the
        numbers, so it does not mark the profile degraded.
        """
        return any(i.get("level", 0) >= 2 for i in self.pressure_incidents)

    @property
    def partial(self) -> bool:
        """True unless the profile is indistinguishable from a strict one."""
        return bool(
            self.events_dropped
            or self.events_repaired
            or self.instances_quarantined
            or self.watchdog_fired
            or self.run_error
            or self.degraded
        )

    def note(self, message: str) -> None:
        self.notes.append(message)

    def quarantine(self, instance: int, reason: str) -> None:
        self.instances_quarantined.add(instance)
        self.notes.append(f"quarantined instance {instance}: {reason}")

    def absorb_repair(self, log) -> None:
        """Fold a :class:`~repro.events.repair.RepairLog` into this report."""
        self.events_dropped += log.dropped
        self.events_repaired += log.synthesized + log.clamped
        self.instances_quarantined |= log.quarantined
        self.notes.extend(log.notes)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        if not self.partial:
            return "profile complete: no salvage needed"
        bits = [
            f"{self.events_seen} events seen",
            f"{self.events_dropped} dropped",
            f"{self.events_repaired} repaired",
            f"{self.instances_completed} instances completed",
            f"{len(self.instances_quarantined)} quarantined",
        ]
        if self.watchdog_fired:
            bits.append("watchdog fired")
        if self.pressure_incidents:
            worst = max(i.get("level", 0) for i in self.pressure_incidents)
            bits.append(
                f"{len(self.pressure_incidents)} pressure incident(s), "
                f"degradation level L{worst}"
            )
        if self.run_error:
            bits.append(f"run aborted: {self.run_error}")
        return "partial profile (" + ", ".join(bits) + ")"

    # ------------------------------------------------------------------
    # Export round-trip (consumed by cube/export.py)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "events_seen": self.events_seen,
            "events_dropped": self.events_dropped,
            "events_repaired": self.events_repaired,
            "instances_completed": self.instances_completed,
            "instances_quarantined": sorted(self.instances_quarantined),
            "notes": list(self.notes),
            "watchdog_fired": self.watchdog_fired,
            "fault_summary": self.fault_summary,
            "run_error": self.run_error,
            "partial": self.partial,
        }
        # Conditional so exports from ungoverned runs stay byte-identical
        # to earlier builds.
        if self.pressure_incidents:
            out["pressure_incidents"] = [dict(i) for i in self.pressure_incidents]
            out["degraded"] = self.degraded
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SalvageReport":
        return cls(
            events_seen=data.get("events_seen", 0),
            events_dropped=data.get("events_dropped", 0),
            events_repaired=data.get("events_repaired", 0),
            instances_completed=data.get("instances_completed", 0),
            instances_quarantined=set(data.get("instances_quarantined", ())),
            notes=list(data.get("notes", ())),
            watchdog_fired=data.get("watchdog_fired", False),
            fault_summary=data.get("fault_summary"),
            run_error=data.get("run_error"),
            pressure_incidents=[dict(i) for i in data.get("pressure_incidents", ())],
        )
