"""The call-tree data structure.

A node represents one call path position: a region, optionally qualified
by a parameter value (parameter instrumentation, used for the paper's
Table IV per-recursion-depth statistics).  Children are keyed by
``(region, parameter)`` so re-entering the same construct reuses the same
node, exactly as in Score-P's profile tree.

Stub nodes (paper Section IV-B4) are ordinary nodes flagged ``is_stub``;
they appear under scheduling-point nodes of implicit tasks and carry the
task's contribution to the time measured there.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.events.regions import Region
from repro.profiling.metrics import NodeMetrics

#: Children are keyed by region plus an optional (name, value) parameter.
NodeKey = Tuple[Region, Optional[tuple]]


class CallTreeNode:
    """One node of a call-path profile tree."""

    # __weakref__ keeps nodes weak-referenceable so reclaimability of
    # trimmed pool nodes is testable without sacrificing the slots layout.
    __slots__ = (
        "region",
        "parameter",
        "parent",
        "children",
        "metrics",
        "is_stub",
        "__weakref__",
    )

    def __init__(
        self,
        region: Region,
        parameter: Optional[tuple] = None,
        parent: Optional["CallTreeNode"] = None,
        is_stub: bool = False,
    ) -> None:
        self.region = region
        self.parameter = parameter
        self.parent = parent
        self.children: Dict[NodeKey, CallTreeNode] = {}
        self.metrics = NodeMetrics()
        self.is_stub = is_stub

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def key(self) -> NodeKey:
        return (self.region, self.parameter)

    def child(
        self,
        region: Region,
        parameter: Optional[tuple] = None,
        is_stub: bool = False,
        factory: Optional[Callable[..., "CallTreeNode"]] = None,
    ) -> "CallTreeNode":
        """Get-or-create the child for ``(region, parameter)``.

        ``factory`` lets the node pool inject recycled nodes.
        """
        key = (region, parameter)
        node = self.children.get(key)
        if node is None:
            if factory is not None:
                node = factory(region, parameter, self, is_stub)
            else:
                node = CallTreeNode(region, parameter, parent=self, is_stub=is_stub)
            self.children[key] = node
        return node

    def find_child(
        self, region: Region, parameter: Optional[tuple] = None
    ) -> Optional["CallTreeNode"]:
        """Lookup without creation."""
        return self.children.get((region, parameter))

    def depth(self) -> int:
        """Distance from the tree root (root has depth 0)."""
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def path(self) -> List["CallTreeNode"]:
        """Root-to-this-node path."""
        nodes: List[CallTreeNode] = []
        node: Optional[CallTreeNode] = self
        while node is not None:
            nodes.append(node)
            node = node.parent
        nodes.reverse()
        return nodes

    def path_names(self) -> str:
        """``main/parallel/barrier``-style path string (for messages)."""
        return "/".join(n.display_name() for n in self.path())

    def display_name(self) -> str:
        name = self.region.name
        if self.parameter is not None:
            pname, pvalue = self.parameter
            name = f"{name}[{pname}={pvalue}]"
        if self.is_stub:
            name = f"{name} (stub)"
        return name

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["CallTreeNode"]:
        """Pre-order traversal of the subtree rooted here.

        Children are visited in insertion order, which the deterministic
        simulation makes reproducible.
        """
        stack: List[CallTreeNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())

    def find(
        self,
        name: Optional[str] = None,
        predicate: Optional[Callable[["CallTreeNode"], bool]] = None,
    ) -> List["CallTreeNode"]:
        """All descendants (including self) matching name and/or predicate."""
        out = []
        for node in self.walk():
            if name is not None and node.region.name != name:
                continue
            if predicate is not None and not predicate(node):
                continue
            out.append(node)
        return out

    def find_one(self, name: str) -> "CallTreeNode":
        """The unique descendant with this region name.

        Raises ``KeyError``/``ValueError`` on zero/multiple matches.
        """
        matches = self.find(name=name)
        if not matches:
            raise KeyError(f"no node named {name!r} under {self.display_name()!r}")
        if len(matches) > 1:
            raise ValueError(f"node name {name!r} is ambiguous ({len(matches)} matches)")
        return matches[0]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def inclusive_time(self) -> float:
        return self.metrics.inclusive_time

    @property
    def exclusive_time(self) -> float:
        """Inclusive time minus the inclusive time of all children.

        The paper derives exclusive times this way (Section IV-A); the
        whole point of Fig. 3 is that with execution-node task attribution
        this quantity stays non-negative and meaningful.
        """
        return self.metrics.inclusive_time - sum(
            c.metrics.inclusive_time for c in self.children.values()
        )

    @property
    def visits(self) -> int:
        return self.metrics.visits

    def subtree_time(self) -> float:
        """Alias for inclusive time (readability in analysis code)."""
        return self.metrics.inclusive_time

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "CallTreeNode") -> None:
        """Recursively fold ``other``'s metrics and children into this tree.

        Used (a) when a completed task-instance tree is merged into the
        aggregate tree of its task construct and (b) when per-thread
        profiles are aggregated.  ``other`` is left untouched.
        """
        if other.region is not self.region or other.parameter != self.parameter:
            raise ValueError(
                f"cannot merge node for {other.display_name()!r} into "
                f"{self.display_name()!r}"
            )
        self.metrics.merge(other.metrics)
        for key, other_child in other.children.items():
            mine = self.children.get(key)
            if mine is None:
                mine = CallTreeNode(
                    other_child.region,
                    other_child.parameter,
                    parent=self,
                    is_stub=other_child.is_stub,
                )
                self.children[key] = mine
            mine.merge(other_child)

    def deep_copy(self) -> "CallTreeNode":
        """Structural copy with copied metrics (used by profile snapshots)."""
        clone = CallTreeNode(self.region, self.parameter, is_stub=self.is_stub)
        clone.metrics.merge(self.metrics)
        for child in self.children.values():
            child_clone = child.deep_copy()
            child_clone.parent = clone
            clone.children[child_clone.key] = child_clone
        return clone

    def __repr__(self) -> str:
        return (
            f"<CallTreeNode {self.display_name()!r} "
            f"incl={self.metrics.inclusive_time:.3f} visits={self.metrics.visits} "
            f"children={len(self.children)}>"
        )
