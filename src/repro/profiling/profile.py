"""The run-level profile container.

After a measured run the profile holds, per thread, the *main* (implicit
task) call tree and the aggregate *task trees* -- "the profile contains
the call tree of the implicit tasks and a call tree for each task
construct which merges the statistics about the execution of all instances
of this task construct" (Section IV-C, Fig. 11).

Aggregation helpers combine per-thread trees into program-wide views, the
form in which the paper's tables quote numbers (e.g. Table III sums
exclusive times over threads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ProfileError
from repro.events.regions import Region, RegionType
from repro.profiling.calltree import CallTreeNode
from repro.profiling.metrics import StatAccumulator

TaskTreeKey = Tuple[Region, Optional[tuple]]


class Profile:
    """A finished measurement: per-thread main trees + task trees."""

    def __init__(
        self,
        main_trees: List[CallTreeNode],
        task_trees: List[Dict[TaskTreeKey, CallTreeNode]],
        memory_stats: Optional[List[dict]] = None,
        salvage=None,
    ) -> None:
        if len(main_trees) != len(task_trees):
            raise ProfileError("main_trees and task_trees length mismatch")
        self.main_trees = main_trees
        self.task_trees = task_trees
        self.memory_stats = memory_stats or [{} for _ in main_trees]
        #: :class:`~repro.profiling.salvage.SalvageReport` when the profile
        #: was built in lenient mode; ``None`` for strict (complete) runs.
        self.salvage = salvage

    # ------------------------------------------------------------------
    @classmethod
    def from_task_profiler(cls, profiler) -> "Profile":
        main = [t.implicit_root for t in profiler.threads]
        tasks = [dict(t.task_trees) for t in profiler.threads]
        memory = [
            {
                "pool": t.pool.stats(),
                "concurrency": t.concurrency.as_dict(),
            }
            for t in profiler.threads
        ]
        return cls(main, tasks, memory, salvage=getattr(profiler, "salvage", None))

    # ------------------------------------------------------------------
    @property
    def is_partial(self) -> bool:
        """True when a salvage report says the profile is incomplete."""
        return self.salvage is not None and self.salvage.partial

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.main_trees)

    def main_tree(self, thread_id: int) -> CallTreeNode:
        return self.main_trees[thread_id]

    def thread_task_trees(self, thread_id: int) -> Dict[TaskTreeKey, CallTreeNode]:
        return self.task_trees[thread_id]

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def aggregated_main_tree(self) -> CallTreeNode:
        """Merge all threads' implicit-task trees into one fresh tree."""
        first = self.main_trees[0]
        merged = CallTreeNode(first.region, first.parameter)
        for tree in self.main_trees:
            merged.merge(tree)
        return merged

    def aggregated_task_trees(self) -> Dict[TaskTreeKey, CallTreeNode]:
        """Merge every thread's per-construct task trees program-wide."""
        merged: Dict[TaskTreeKey, CallTreeNode] = {}
        for per_thread in self.task_trees:
            for key, tree in per_thread.items():
                target = merged.get(key)
                if target is None:
                    target = CallTreeNode(tree.region, tree.parameter)
                    merged[key] = target
                target.merge(tree)
        return merged

    def task_tree(self, region_name: str) -> CallTreeNode:
        """The program-wide aggregate tree of the named task construct.

        When parameter instrumentation split the construct into several
        trees, they are merged for this view; use
        :meth:`task_trees_by_parameter` for the split form.
        """
        merged: Optional[CallTreeNode] = None
        for key, tree in self.aggregated_task_trees().items():
            region, _parameter = key
            if region.name != region_name:
                continue
            if merged is None:
                merged = CallTreeNode(region, None)
            clone = tree.deep_copy()
            clone.parameter = None
            merged.merge(clone)
        if merged is None:
            raise KeyError(f"no task tree for construct {region_name!r}")
        return merged

    def task_trees_by_parameter(self, region_name: str) -> Dict[Optional[tuple], CallTreeNode]:
        """Parameter-value -> aggregate tree, for one task construct."""
        out: Dict[Optional[tuple], CallTreeNode] = {}
        for (region, parameter), tree in self.aggregated_task_trees().items():
            if region.name == region_name:
                out[parameter] = tree
        if not out:
            raise KeyError(f"no task tree for construct {region_name!r}")
        return out

    # ------------------------------------------------------------------
    # Queries used by the analysis layer
    # ------------------------------------------------------------------
    def task_instance_stats(self, region_name: str) -> StatAccumulator:
        """Per-instance duration statistics of a task construct.

        The aggregate tree root's duration accumulator holds exactly one
        sample per completed instance (mean/min/max task runtime --
        Section III's required measurement).
        """
        return self.task_tree(region_name).metrics.durations

    def total_task_instances(self) -> int:
        """Completed task instances program-wide (all constructs)."""
        return sum(
            tree.metrics.durations.count
            for per_thread in self.task_trees
            for tree in per_thread.values()
        )

    def region_time(
        self,
        region_name: str,
        metric: str = "exclusive",
        where: str = "everywhere",
    ) -> float:
        """Total time of all nodes with this region name.

        ``metric`` is ``'exclusive'`` or ``'inclusive'``; ``where`` selects
        ``'main'`` (implicit trees), ``'tasks'`` (aggregate task trees), or
        ``'everywhere'``.  Sums over threads, matching how the paper quotes
        region times (Table III).
        """
        if metric not in ("exclusive", "inclusive"):
            raise ValueError(f"unknown metric {metric!r}")
        roots: List[CallTreeNode] = []
        if where in ("main", "everywhere"):
            roots.extend(self.main_trees)
        if where in ("tasks", "everywhere"):
            roots.extend(
                tree for per_thread in self.task_trees for tree in per_thread.values()
            )
        if where not in ("main", "tasks", "everywhere"):
            raise ValueError(f"unknown scope {where!r}")
        total = 0.0
        for root in roots:
            for node in root.walk():
                if node.region.name == region_name and not node.is_stub:
                    total += (
                        node.exclusive_time if metric == "exclusive" else node.inclusive_time
                    )
        return total

    def flat_metric_columns(
        self, include_stubs: bool = False
    ) -> Tuple[List[int], Dict[int, Region], List[float], List[float], List[int]]:
        """Columnar flat view: one row per call-tree node, handle-keyed.

        Walks every tree (main + task aggregates) once, in the same
        deterministic order the dict-based flat queries use, and returns
        parallel columns ``(handles, regions, exclusive, inclusive,
        visits)`` where ``regions`` maps each handle to its
        :class:`~repro.events.regions.Region` in first-encounter order.
        The columns are the array-backed substrate for the flat cube
        queries (:mod:`repro.cube.query`): grouping them by handle with
        ``np.bincount`` is a sequential per-bin fold in row order,
        bit-identical to accumulating a dict row by row.
        """
        handles: List[int] = []
        regions: Dict[int, Region] = {}
        exclusive: List[float] = []
        inclusive: List[float] = []
        visits: List[int] = []
        roots: List[CallTreeNode] = list(self.main_trees)
        for per_thread in self.task_trees:
            roots.extend(per_thread.values())
        for root in roots:
            for node in root.walk():
                if node.is_stub and not include_stubs:
                    continue
                region = node.region
                handle = region.handle
                if handle not in regions:
                    regions[handle] = region
                handles.append(handle)
                exclusive.append(node.exclusive_time)
                inclusive.append(node.metrics.inclusive_time)
                visits.append(node.metrics.visits)
        return handles, regions, exclusive, inclusive, visits

    def stub_nodes(self, thread_id: Optional[int] = None) -> List[CallTreeNode]:
        """All stub nodes, optionally restricted to one thread's main tree."""
        trees = (
            self.main_trees if thread_id is None else [self.main_trees[thread_id]]
        )
        return [node for tree in trees for node in tree.walk() if node.is_stub]

    def scheduling_point_idle_time(self, thread_id: int) -> float:
        """Time inside scheduling points *not* spent executing tasks.

        Fig. 5's analysis: barrier inclusive time minus the stub nodes'
        task-execution time is "overhead caused by task management and/or
        idle time".
        """
        idle = 0.0
        for node in self.main_trees[thread_id].walk():
            if node.region.region_type in (
                RegionType.BARRIER,
                RegionType.IMPLICIT_BARRIER,
                RegionType.TASKWAIT,
                RegionType.TASKYIELD,
            ):
                stub_time = sum(
                    c.metrics.inclusive_time for c in node.children.values() if c.is_stub
                )
                idle += node.metrics.inclusive_time - stub_time
        return idle

    def max_concurrent_tasks_per_thread(self) -> int:
        """Table II's metric for this run."""
        maxima = [
            stats.get("concurrency", {}).get("overall_max", 0)
            for stats in self.memory_stats
        ]
        return max(maxima, default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        constructs = {key[0].name for per in self.task_trees for key in per}
        return (
            f"<Profile threads={self.n_threads} "
            f"task_constructs={sorted(constructs)}>"
        )
