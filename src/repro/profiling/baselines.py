"""Naive/rejected profiling designs, kept as baselines.

The paper argues for its design by contrasting two alternatives:

:class:`CreationNodeProfiler`
    Attributes a task's execution to the call-tree node *where it was
    created* (Section IV-B2, Fig. 3 left).  The reproduction shows the
    pathology quantitatively: the creating node's exclusive time goes
    negative, and scheduling-point (barrier) time swallows useful work.

:class:`NoInstanceProfiler`
    The Fürlinger/Skinner-style scheme (Section II): task begin/end are
    treated as plain enter/exit on the thread's single stack, with no task
    instance identification.  It works only for *uninterrupted* tasks --
    the moment a task suspends and another interleaves (Fig. 2), the
    nesting condition breaks and the profiler must give up.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import EventOrderError, ProfileError
from repro.events.model import InstanceId, is_implicit
from repro.events.regions import Region
from repro.profiling.basic import ClassicProfiler
from repro.profiling.calltree import CallTreeNode
from repro.profiling.task_profiler import _Frame


class CreationNodeProfiler:
    """Task execution attributed to the creating node (Fig. 3, left side).

    Single-threaded by design -- it exists to reproduce the paper's
    didactic example.  The API mirrors a subset of the task profiler:
    ``enter``/``exit`` for regions, ``task_created`` when a task-creation
    region registers a new instance, ``task_begin``/``task_end`` around
    execution.  Execution time lands on the node created *under the
    creation site*, no matter where the task actually ran.
    """

    def __init__(self, root_region: Region) -> None:
        self.root = CallTreeNode(root_region)
        self._stack: List[_Frame] = [_Frame(self.root, 0.0)]
        #: instance id -> node under the creation site
        self._creation_nodes: Dict[InstanceId, CallTreeNode] = {}
        self._executing: Dict[InstanceId, float] = {}

    @property
    def current_node(self) -> CallTreeNode:
        return self._stack[-1].node

    def enter(self, region: Region, time: float) -> CallTreeNode:
        node = self.current_node.child(region)
        self._stack.append(_Frame(node, time))
        return node

    def exit(self, region: Region, time: float) -> CallTreeNode:
        if len(self._stack) <= 1:
            raise ProfileError(f"exit {region.name!r} with no open region")
        frame = self._stack.pop()
        if frame.node.region is not region:
            raise ProfileError(
                f"exit {region.name!r} does not match {frame.node.region.name!r}"
            )
        frame.node.metrics.record_visit(frame.close(time))
        return frame.node

    def task_created(self, region: Region, instance: InstanceId) -> CallTreeNode:
        """Register the creation site: the task node hangs off *here*."""
        node = self.current_node.child(region)
        self._creation_nodes[instance] = node
        return node

    def task_begin(self, instance: InstanceId, time: float) -> None:
        if instance not in self._creation_nodes:
            raise ProfileError(f"task_begin for uncreated instance {instance}")
        self._executing[instance] = time

    def task_end(self, instance: InstanceId, time: float) -> None:
        begin = self._executing.pop(instance, None)
        if begin is None:
            raise ProfileError(f"task_end for non-executing instance {instance}")
        node = self._creation_nodes.pop(instance)
        node.metrics.record_visit(time - begin)

    def finish(self, time: float) -> CallTreeNode:
        if len(self._stack) != 1:
            open_names = ", ".join(f.node.region.name for f in self._stack[1:])
            raise ProfileError(f"finished with open region(s): {open_names}")
        frame = self._stack.pop()
        frame.node.metrics.record_visit(frame.close(time))
        return self.root


class NoInstanceProfiler(ClassicProfiler):
    """Instance-blind task profiling (Fürlinger/Skinner 2009).

    Task begin/end map onto enter/exit of the task region on the one and
    only stack.  Correct as long as tasks never suspend; interleaved
    suspension produces un-nested exits, which surface as
    :class:`~repro.errors.EventOrderError` -- the reproduction of the
    paper's claim that "their approach lacks task instance identification
    and, thus, supports only uninterrupted tasks".
    """

    def task_begin(self, region: Region, instance: InstanceId, time: float) -> None:
        # Instance id intentionally ignored -- that is the point.
        self.enter(region, time)

    def task_end(self, region: Region, instance: InstanceId, time: float) -> None:
        node = self.current_node
        if node.region is not region:
            raise EventOrderError(
                f"task_end {region.name!r} while inside {node.region.name!r}: "
                "interleaved task fragments cannot be distinguished without "
                "instance identification"
            )
        self.exit(region, time)

    def task_switch(self, instance: InstanceId, time: float) -> None:
        """A switch to anything but the implicit task is unsupported."""
        if not is_implicit(instance):
            raise EventOrderError(
                "task suspension requires task instance identification; "
                "the instance-blind profiler only supports uninterrupted tasks"
            )
