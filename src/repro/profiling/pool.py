"""Recycling allocator for task-instance call-tree nodes.

Paper, Section IV-C: "The task instance's data structures are kept for
later reuse" and Section V-B: "released task-instance tree nodes are
reused".  A free-list keeps the per-thread memory footprint bounded by the
*maximum concurrent* task-tree volume instead of the total number of task
instances -- the property Table II quantifies.

Slab extension (the columnar hot path): with ``slab_size > 1`` a cache
miss constructs a whole slab of blank nodes at once and parks them as
*virgin stock*, so steady-state allocation is one list ``pop`` plus field
assignment instead of an object construction per node.  The counters are
unchanged by slabbing -- ``allocated`` counts *hand-outs* of fresh nodes
(one per acquire, exactly as before), never the stock sitting in the
slab -- so pool statistics and everything derived from them (cube
exports, Table II numbers) are identical whichever slab size is used.

The pool also exposes the statistics the memory evaluation needs:
how many nodes were ever allocated versus recycled.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.regions import Region
from repro.profiling.calltree import CallTreeNode


class NodePool:
    """Per-thread free-list (+ optional slab stock) of :class:`CallTreeNode`.

    ``slab_size=1`` (the default) is the classic allocator: every cache
    miss constructs exactly one node.  Larger sizes amortize construction
    across a slab; the governor's degradation ladder still wins -- once
    ``max_free`` is set (L1/L2), refills collapse back to single nodes
    and :meth:`trim` drops the virgin stock along with the free list, so
    a degraded pool retains no hidden slab memory.
    """

    __slots__ = (
        "_free",
        "_virgin",
        "allocated",
        "reused",
        "released",
        "trimmed",
        "max_free",
        "slab_size",
        "slabs",
    )

    def __init__(self, slab_size: int = 1) -> None:
        if slab_size < 1:
            raise ValueError(f"slab_size must be >= 1, got {slab_size!r}")
        self._free: List[CallTreeNode] = []
        #: blank never-handed-out nodes from slab construction
        self._virgin: List[CallTreeNode] = []
        #: nodes handed out fresh (peak memory proxy)
        self.allocated: int = 0
        #: nodes served from the free list
        self.reused: int = 0
        #: nodes returned to the free list
        self.released: int = 0
        #: nodes dropped from the free list/virgin stock by trim()/max_free
        self.trimmed: int = 0
        #: cap on the free list (None = unbounded, the classic behavior);
        #: the governor's ladder sets this at L1/L2
        self.max_free: Optional[int] = None
        self.slab_size = slab_size
        #: slabs constructed (0 for a slab_size=1 pool)
        self.slabs: int = 0

    # ------------------------------------------------------------------
    def acquire(
        self,
        region: Region,
        parameter: Optional[tuple] = None,
        parent: Optional[CallTreeNode] = None,
        is_stub: bool = False,
    ) -> CallTreeNode:
        """Hand out a node, recycling a released one when available."""
        if self._free:
            node = self._free.pop()
            node.region = region
            node.parameter = parameter
            node.parent = parent
            node.is_stub = is_stub
            node.metrics.reset()
            node.children.clear()
            self.reused += 1
            return node
        self.allocated += 1
        virgin = self._virgin
        if not virgin:
            # Degraded pools (max_free set by the ladder) must not hoard
            # stock: refill one node at a time, exactly like slab_size=1.
            if self.slab_size == 1 or self.max_free is not None:
                return CallTreeNode(region, parameter, parent=parent, is_stub=is_stub)
            self.slabs += 1
            virgin.extend(CallTreeNode(None) for _ in range(self.slab_size))
        node = virgin.pop()
        node.region = region
        node.parameter = parameter
        node.parent = parent
        node.is_stub = is_stub
        return node

    def release_tree(self, root: CallTreeNode) -> int:
        """Return every node of a completed instance tree to the free list.

        Returns the number of nodes released.  The tree must no longer be
        referenced by the caller; its links are cleared.
        """
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            node.children.clear()
            node.parent = None
            self._free.append(node)
            count += 1
        self.released += count
        if self.max_free is not None and len(self._free) > self.max_free:
            self.trim(self.max_free)
        return count

    def trim(self, max_free: int = 0) -> int:
        """Drop free-list nodes beyond ``max_free`` plus all virgin stock;
        returns how many were dropped.

        The only references the pool holds are the free-list and virgin
        entries, so trimming makes ``released - reused`` memory (and any
        unused slab remainder) actually reclaimable by the collector
        (ladder level L2).
        """
        if max_free < 0:
            raise ValueError(f"max_free must be >= 0, got {max_free!r}")
        dropped = len(self._virgin)
        if dropped:
            del self._virgin[:]
        excess = len(self._free) - max_free
        if excess > 0:
            del self._free[max_free:]
            dropped += excess
        self.trimmed += dropped
        return dropped

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def virgin_count(self) -> int:
        """Blank nodes parked in slab stock (0 unless slab_size > 1)."""
        return len(self._virgin)

    @property
    def live_count(self) -> int:
        """Nodes currently checked out (allocated + reused - released... )

        Computed as total hand-outs minus returns; a proxy for the live
        task-instance tree volume.
        """
        return self.allocated + self.reused - self.released

    @property
    def held_count(self) -> int:
        """Everything the pool itself keeps alive: free list + virgin stock.

        This is the honest memory-gauge contribution -- slab stock is
        real memory even though it was never handed out.
        """
        return len(self._free) + len(self._virgin)

    def stats(self) -> dict:
        out = {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": self.free_count,
        }
        if self.trimmed:
            out["trimmed"] = self.trimmed
        if self.slabs:
            out["slabs"] = self.slabs
            out["virgin"] = self.virgin_count
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NodePool allocated={self.allocated} reused={self.reused} "
            f"free={self.free_count}>"
        )
