"""Recycling allocator for task-instance call-tree nodes.

Paper, Section IV-C: "The task instance's data structures are kept for
later reuse" and Section V-B: "released task-instance tree nodes are
reused".  A free-list keeps the per-thread memory footprint bounded by the
*maximum concurrent* task-tree volume instead of the total number of task
instances -- the property Table II quantifies.

The pool also exposes the statistics the memory evaluation needs:
how many nodes were ever allocated versus recycled.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.regions import Region
from repro.profiling.calltree import CallTreeNode


class NodePool:
    """Per-thread free-list of :class:`CallTreeNode` objects."""

    __slots__ = ("_free", "allocated", "reused", "released")

    def __init__(self) -> None:
        self._free: List[CallTreeNode] = []
        #: nodes created fresh (peak memory proxy)
        self.allocated: int = 0
        #: nodes served from the free list
        self.reused: int = 0
        #: nodes returned to the free list
        self.released: int = 0

    # ------------------------------------------------------------------
    def acquire(
        self,
        region: Region,
        parameter: Optional[tuple] = None,
        parent: Optional[CallTreeNode] = None,
        is_stub: bool = False,
    ) -> CallTreeNode:
        """Hand out a node, recycling a released one when available."""
        if self._free:
            node = self._free.pop()
            node.region = region
            node.parameter = parameter
            node.parent = parent
            node.is_stub = is_stub
            node.metrics.reset()
            node.children.clear()
            self.reused += 1
            return node
        self.allocated += 1
        return CallTreeNode(region, parameter, parent=parent, is_stub=is_stub)

    def release_tree(self, root: CallTreeNode) -> int:
        """Return every node of a completed instance tree to the free list.

        Returns the number of nodes released.  The tree must no longer be
        referenced by the caller; its links are cleared.
        """
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            node.children.clear()
            node.parent = None
            self._free.append(node)
            count += 1
        self.released += count
        return count

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def live_count(self) -> int:
        """Nodes currently checked out (allocated + reused - released... )

        Computed as total hand-outs minus returns; a proxy for the live
        task-instance tree volume.
        """
        return self.allocated + self.reused - self.released

    def stats(self) -> dict:
        return {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": self.free_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NodePool allocated={self.allocated} reused={self.reused} "
            f"free={self.free_count}>"
        )
