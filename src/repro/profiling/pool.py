"""Recycling allocator for task-instance call-tree nodes.

Paper, Section IV-C: "The task instance's data structures are kept for
later reuse" and Section V-B: "released task-instance tree nodes are
reused".  A free-list keeps the per-thread memory footprint bounded by the
*maximum concurrent* task-tree volume instead of the total number of task
instances -- the property Table II quantifies.

The pool also exposes the statistics the memory evaluation needs:
how many nodes were ever allocated versus recycled.
"""

from __future__ import annotations

from typing import List, Optional

from repro.events.regions import Region
from repro.profiling.calltree import CallTreeNode


class NodePool:
    """Per-thread free-list of :class:`CallTreeNode` objects."""

    __slots__ = ("_free", "allocated", "reused", "released", "trimmed", "max_free")

    def __init__(self) -> None:
        self._free: List[CallTreeNode] = []
        #: nodes created fresh (peak memory proxy)
        self.allocated: int = 0
        #: nodes served from the free list
        self.reused: int = 0
        #: nodes returned to the free list
        self.released: int = 0
        #: nodes dropped from the free list by trim()/max_free
        self.trimmed: int = 0
        #: cap on the free list (None = unbounded, the classic behavior);
        #: the governor's ladder sets this at L1/L2
        self.max_free: Optional[int] = None

    # ------------------------------------------------------------------
    def acquire(
        self,
        region: Region,
        parameter: Optional[tuple] = None,
        parent: Optional[CallTreeNode] = None,
        is_stub: bool = False,
    ) -> CallTreeNode:
        """Hand out a node, recycling a released one when available."""
        if self._free:
            node = self._free.pop()
            node.region = region
            node.parameter = parameter
            node.parent = parent
            node.is_stub = is_stub
            node.metrics.reset()
            node.children.clear()
            self.reused += 1
            return node
        self.allocated += 1
        return CallTreeNode(region, parameter, parent=parent, is_stub=is_stub)

    def release_tree(self, root: CallTreeNode) -> int:
        """Return every node of a completed instance tree to the free list.

        Returns the number of nodes released.  The tree must no longer be
        referenced by the caller; its links are cleared.
        """
        count = 0
        stack = [root]
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            node.children.clear()
            node.parent = None
            self._free.append(node)
            count += 1
        self.released += count
        if self.max_free is not None and len(self._free) > self.max_free:
            self.trim(self.max_free)
        return count

    def trim(self, max_free: int = 0) -> int:
        """Drop free-list nodes beyond ``max_free``; returns how many.

        The only reference the pool holds on a released node is the
        free-list entry, so trimming makes ``released - reused`` memory
        actually reclaimable by the collector (ladder level L2).
        """
        if max_free < 0:
            raise ValueError(f"max_free must be >= 0, got {max_free!r}")
        excess = len(self._free) - max_free
        if excess <= 0:
            return 0
        del self._free[max_free:]
        self.trimmed += excess
        return excess

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def live_count(self) -> int:
        """Nodes currently checked out (allocated + reused - released... )

        Computed as total hand-outs minus returns; a proxy for the live
        task-instance tree volume.
        """
        return self.allocated + self.reused - self.released

    def stats(self) -> dict:
        out = {
            "allocated": self.allocated,
            "reused": self.reused,
            "released": self.released,
            "free": self.free_count,
        }
        if self.trimmed:
            out["trimmed"] = self.trimmed
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NodePool allocated={self.allocated} reused={self.reused} "
            f"free={self.free_count}>"
        )
