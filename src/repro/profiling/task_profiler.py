"""The task profiling algorithm of the paper (Section IV-C, Fig. 12).

Responsibilities, mapped to the paper:

* **Task-instance table** -- every *active* instance (begun, not completed)
  owns a private call tree and a frame stack; the table keeps them
  addressable across suspension/resumption (Fig. 6-9).
* **Current-task pointer** -- per thread; ``None`` means the implicit task
  is executing.
* **TaskSwitch** -- pauses time measurement on every open region of the
  suspended instance and resumes it on the target instance (Fig. 12 lines
  17-38); simultaneously maintains the **stub node**: the child of the
  implicit task's current scheduling-point node that accumulates the
  task-execution time observed there and counts executed fragments
  (Section IV-B4, Fig. 5).
* **TaskEnd** -- closes the instance's root region, switches back to the
  implicit task, merges the finished instance tree into the aggregate tree
  of its task construct ("a new node is created for the first occurrence
  of this tasking construct; later occurrences are merged with this
  node"), and recycles the instance tree's nodes through the
  :class:`~repro.profiling.pool.NodePool`.

Untied-task *migration* is supported exactly as Section IV-D1 describes:
the instance table is shared between threads, so a task suspended on
thread A can be resumed on thread B -- the pointer to the task-specific
data migrates with the task.  The stub accounting always happens in the
*executing* thread's implicit tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ProfileError
from repro.events.batch import (
    F_PAYLOAD,
    INST_SHIFT,
    K_ENTER,
    K_EXIT,
    K_METRIC,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    KIND_MASK,
    RID_MASK,
    RID_SHIFT,
    TID_MASK,
    TID_SHIFT,
)
from repro.events.model import InstanceId, is_implicit
from repro.events.regions import Region, RegionType
from repro.profiling.calltree import CallTreeNode
from repro.profiling.memory import ConcurrencyTracker
from repro.profiling.pool import NodePool


class _Frame:
    """One open region of some task: where, since when, and how much so far.

    ``partial`` accumulates time from fragments completed before the last
    suspension; ``start`` is the virtual time of the last (re)start, or
    ``None`` while the owning task is suspended.
    """

    __slots__ = ("node", "start", "partial", "folded", "folded_region")

    def __init__(
        self,
        node: CallTreeNode,
        start: float,
        folded: bool = False,
        folded_region=None,
    ) -> None:
        self.node = node
        self.start: Optional[float] = start
        self.partial: float = 0.0
        #: frame clipped by the call-path depth limit: exits pop it, but
        #: no metrics are recorded (the time stays in the boundary node)
        self.folded = folded
        self.folded_region = folded_region

    def pause(self, now: float) -> None:
        if self.start is None:
            raise ProfileError(f"pausing already-paused frame for {self.node.display_name()!r}")
        self.partial += now - self.start
        self.start = None

    def resume(self, now: float) -> None:
        if self.start is not None:
            raise ProfileError(f"resuming running frame for {self.node.display_name()!r}")
        self.start = now

    def close(self, now: float) -> float:
        """Total accumulated duration at region exit."""
        if self.start is None:
            raise ProfileError(f"closing paused frame for {self.node.display_name()!r}")
        return self.partial + (now - self.start)


class InstanceData:
    """Measurement state of one active task instance."""

    __slots__ = (
        "instance",
        "region",
        "parameter",
        "root",
        "frames",
        "suspended",
        "begin_time",
        "fragments",
        "home_thread",
        "home_tracker",
        "home_pool",
        "stub_only",
    )

    def __init__(
        self,
        instance: InstanceId,
        region: Region,
        parameter: Optional[tuple],
        root: CallTreeNode,
        begin_time: float,
        home_thread: int,
        home_tracker: Optional[ConcurrencyTracker] = None,
        home_pool: Optional[NodePool] = None,
    ) -> None:
        self.instance = instance
        self.region = region
        self.parameter = parameter
        self.root = root
        self.frames: List[_Frame] = []
        self.suspended = False
        self.begin_time = begin_time
        self.fragments = 0
        self.home_thread = home_thread
        # Untied tasks may end on a different thread than they began on;
        # concurrency accounting and node recycling stay with the home
        # thread (the pointer migrates with the task, Section IV-D1).
        self.home_tracker = home_tracker
        self.home_pool = home_pool
        # Governor ladder level >= L3: the instance keeps only its root
        # node; every interior region is folded into it (depth limit 1).
        self.stub_only = False

    def current_node(self) -> CallTreeNode:
        return self.frames[-1].node if self.frames else self.root


#: Aggregate task trees are keyed by (task region, parameter).
TaskTreeKey = Tuple[Region, Optional[tuple]]


class ThreadTaskProfiler:
    """Per-thread half of the task profiler: implicit tree + current task.

    ``max_call_path_depth`` reproduces Score-P's call-path depth limit
    (the paper's Section IV-B3 concern about exploding trees): regions
    entered beyond the limit are folded into the boundary node -- their
    time stays inside it, no deeper nodes are created, and
    :attr:`truncated_enters` counts the clipped paths.
    """

    def __init__(
        self,
        thread_id: int,
        implicit_region: Region,
        instance_table: Dict[InstanceId, InstanceData],
        start_time: float = 0.0,
        max_call_path_depth: Optional[int] = None,
    ) -> None:
        self.thread_id = thread_id
        self.implicit_root = CallTreeNode(implicit_region)
        self._implicit_frames: List[_Frame] = [_Frame(self.implicit_root, start_time)]
        self._table = instance_table
        self.current: Optional[InstanceData] = None
        self._stub_frame: Optional[_Frame] = None
        #: finished-task aggregate trees of this thread
        self.task_trees: Dict[TaskTreeKey, CallTreeNode] = {}
        # Slabbed allocation amortizes node construction on the columnar
        # hot path; counters (and thus cube exports) are slab-invariant.
        self.pool = NodePool(slab_size=16)
        self.concurrency = ConcurrencyTracker()
        if max_call_path_depth is not None and max_call_path_depth < 1:
            raise ValueError("max_call_path_depth must be >= 1")
        self.max_call_path_depth = max_call_path_depth
        #: enters folded away by the depth limit
        self.truncated_enters = 0

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _frames(self) -> List[_Frame]:
        return self.current.frames if self.current is not None else self._implicit_frames

    def _current_node(self) -> CallTreeNode:
        if self.current is not None:
            return self.current.current_node()
        return self._implicit_frames[-1].node if self._implicit_frames else self.implicit_root

    def implicit_current_node(self) -> CallTreeNode:
        """The implicit task's position, regardless of the current task."""
        return self._implicit_frames[-1].node if self._implicit_frames else self.implicit_root

    # ------------------------------------------------------------------
    # Region events
    # ------------------------------------------------------------------
    def enter(self, region: Region, time: float, parameter: Optional[tuple] = None) -> CallTreeNode:
        """Enter a region in the context of the current task."""
        frames = self._frames()
        limit = self.max_call_path_depth
        if self.current is not None and self.current.stub_only:
            # Governor stub-only accounting: the instance is its root node;
            # interior regions fold into it, preserving inclusive time.
            limit = 1
        if limit is not None and len(frames) >= limit:
            # Depth limit: fold this region into the boundary node.  The
            # folded frame keeps nesting balanced; its time is already
            # inside the boundary node's inclusive time.
            self.truncated_enters += 1
            boundary = frames[-1].node if frames else (
                self.current.root if self.current is not None else self.implicit_root
            )
            frames.append(_Frame(boundary, time, folded=True, folded_region=region))
            return boundary
        if self.current is not None:
            parent = self.current.current_node()
            node = parent.child(region, parameter, factory=self.pool.acquire)
        else:
            parent = self.implicit_current_node()
            node = parent.child(region, parameter)
        frames.append(_Frame(node, time))
        return node

    def exit(self, region: Region, time: float) -> CallTreeNode:
        """Exit the innermost open region of the current task."""
        frames = self._frames()
        # frames[0] is the root frame (implicit task root or instance root);
        # it is closed by finish()/task_end(), never by a plain exit.
        if len(frames) <= 1:
            raise ProfileError(
                f"thread {self.thread_id}: exit {region.name!r} with no open region"
            )
        frame = frames.pop()
        expected = frame.folded_region if frame.folded else frame.node.region
        if expected is not region:
            frames.append(frame)
            raise ProfileError(
                f"thread {self.thread_id}: exit {region.name!r} does not match "
                f"innermost open region {expected.name!r}"
            )
        if not frame.folded:
            frame.node.metrics.record_visit(frame.close(time))
        return frame.node

    def metric(self, counters: dict) -> None:
        """Attribute custom counters to the current task's current node."""
        self._current_node().metrics.add_counters(counters)

    # ------------------------------------------------------------------
    # Task events (Fig. 12)
    # ------------------------------------------------------------------
    def task_begin(
        self,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> InstanceData:
        """TaskBegin: create instance data, switch to it, enter its root."""
        if instance in self._table:
            raise ProfileError(f"instance {instance} already active")
        root = self.pool.acquire(region, parameter)
        data = InstanceData(
            instance,
            region,
            parameter,
            root,
            time,
            self.thread_id,
            home_tracker=self.concurrency,
            home_pool=self.pool,
        )
        self._table[instance] = data
        self.concurrency.instance_created()
        self.task_switch(instance, time)
        # Enter(task instance, task region): open the root frame.
        data.frames.append(_Frame(root, time))
        return data

    def task_switch(self, instance: InstanceId, time: float) -> None:
        """TaskSwitch: suspend the current task, resume ``instance``.

        ``instance`` may be an implicit id (negative), meaning "back to the
        implicit task".
        """
        # -- leave the currently executing explicit task, if any ----------
        if self.current is not None:
            leaving = self.current
            stub = self._stub_frame
            if stub is None:
                raise ProfileError("explicit task current but no stub frame open")
            stub.node.metrics.add_time(stub.close(time))
            self._stub_frame = None
            for frame in leaving.frames:
                frame.pause(time)
            leaving.suspended = True
            self.current = None

        if is_implicit(instance):
            return

        # -- resume / start the target explicit task ----------------------
        data = self._table.get(instance)
        if data is None:
            raise ProfileError(f"task_switch to unknown instance {instance}")
        if data.suspended:
            for frame in data.frames:
                frame.resume(time)
            data.suspended = False
        self.current = data
        data.fragments += 1
        # Stub node: child of the implicit task's current scheduling point.
        anchor = self.implicit_current_node()
        stub = anchor.child(data.region, None, is_stub=True)
        stub.metrics.count_fragment()
        self._stub_frame = _Frame(stub, time)

    def task_end(self, region: Region, instance: InstanceId, time: float) -> CallTreeNode:
        """TaskEnd: close the root, switch to implicit, merge, recycle.

        Returns the (persistent) aggregate tree root the instance was
        merged into.
        """
        data = self._table.get(instance)
        if data is None:
            raise ProfileError(f"task_end for unknown instance {instance}")
        if self.current is not data:
            raise ProfileError(
                f"task_end for instance {instance} which is not current on "
                f"thread {self.thread_id}"
            )
        if len(data.frames) != 1:
            open_names = ", ".join(f.node.region.name for f in data.frames[1:])
            raise ProfileError(
                f"instance {instance} ended with open region(s): {open_names}"
            )
        root_frame = data.frames.pop()
        if root_frame.node is not data.root:
            raise ProfileError("instance root frame does not reference root node")
        data.root.metrics.record_visit(root_frame.close(time))

        self.task_switch(-(self.thread_id + 1), time)  # back to the implicit task

        # Merge into the aggregate tree of this task construct.
        key: TaskTreeKey = (data.region, data.parameter)
        aggregate = self.task_trees.get(key)
        if aggregate is None:
            aggregate = CallTreeNode(data.region, data.parameter)
            self.task_trees[key] = aggregate
        aggregate.merge(data.root)

        del self._table[instance]
        (data.home_pool or self.pool).release_tree(data.root)
        (data.home_tracker or self.concurrency).instance_completed()
        return aggregate

    # ------------------------------------------------------------------
    # Salvage helpers (lenient mode only -- never called on the hot path)
    # ------------------------------------------------------------------
    def salvage_drop_current(self, time: float) -> Optional[InstanceData]:
        """Detach the current explicit task without merging it.

        Used when quarantining an instance whose event history is broken:
        the stub frame is closed (its time is real and stays in the
        implicit tree) but the instance tree is discarded.
        """
        data = self.current
        if data is None:
            return None
        stub = self._stub_frame
        if stub is not None and stub.start is not None:
            stub.node.metrics.add_time(stub.close(time))
        self._stub_frame = None
        self.current = None
        return data

    def salvage_finish(self, time: float) -> CallTreeNode:
        """Force-close whatever is still open, then finish normally."""
        if self.current is not None:
            self.salvage_drop_current(time)
        while len(self._implicit_frames) > 1:
            frame = self._implicit_frames.pop()
            if not frame.folded and frame.start is not None:
                frame.node.metrics.record_visit(frame.close(time))
        return self.finish(time)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self, time: float) -> CallTreeNode:
        """Close the implicit task's root frame; returns the main tree."""
        if self.current is not None:
            raise ProfileError(
                f"thread {self.thread_id} finished while instance "
                f"{self.current.instance} is current"
            )
        if len(self._implicit_frames) != 1:
            open_names = ", ".join(
                f.node.region.name for f in self._implicit_frames[1:]
            )
            raise ProfileError(
                f"thread {self.thread_id} finished with open region(s): {open_names}"
            )
        frame = self._implicit_frames.pop()
        frame.node.metrics.record_visit(frame.close(time))
        return self.implicit_root


class TaskProfiler:
    """Whole-program task profiler: one :class:`ThreadTaskProfiler` per thread.

    The instance table is shared across threads so that untied tasks may
    migrate (Section IV-D1); each event is routed to the executing
    thread's profiler.  The profiler implements the POMP2-style listener
    protocol consumed by :class:`repro.instrument.layer.InstrumentationLayer`.

    ``strict=False`` selects *lenient* (salvage) mode: instead of raising
    :class:`~repro.errors.ProfileError` on an inconsistent event, the
    profiler drops the event or quarantines the offending task instance
    and records the incident in :attr:`salvage`.  The lenient handlers
    are installed as *instance* attributes shadowing the class methods,
    so the default strict path is byte-identical to the original
    implementation -- no per-event mode check on the hot path.
    """

    def __init__(
        self,
        n_threads: int,
        implicit_region: Region,
        start_time: float = 0.0,
        max_call_path_depth: Optional[int] = None,
        strict: bool = True,
        governor=None,
    ) -> None:
        self.n_threads = n_threads
        self.implicit_region = implicit_region
        self.instance_table: Dict[InstanceId, InstanceData] = {}
        self.threads: List[ThreadTaskProfiler] = [
            ThreadTaskProfiler(
                t,
                implicit_region,
                self.instance_table,
                start_time,
                max_call_path_depth=max_call_path_depth,
            )
            for t in range(n_threads)
        ]
        self.finished = False
        self._finish_time: Optional[float] = None
        self.strict = strict
        self.salvage = None
        if not strict:
            from repro.profiling.salvage import SalvageReport

            self.salvage = SalvageReport()
            # Shadow the listener entry points with the lenient variants.
            self.on_enter = self._salvage_on_enter  # type: ignore[method-assign]
            self.on_exit = self._salvage_on_exit  # type: ignore[method-assign]
            self.on_task_begin = self._salvage_on_task_begin  # type: ignore[method-assign]
            self.on_task_switch = self._salvage_on_task_switch  # type: ignore[method-assign]
            self.on_task_end = self._salvage_on_task_end  # type: ignore[method-assign]
            self.on_finish = self._salvage_on_finish  # type: ignore[method-assign]
        self.governor = governor
        if governor is not None:
            # Governed wrappers compose on top of whichever handlers are
            # installed (strict class methods or lenient instance
            # attributes); with no governor nothing here runs and the
            # hot path stays byte-identical.
            self._gov_live: set = set()
            self._gov_stub: set = set()
            self._base_on_task_begin = self.on_task_begin
            self._base_on_task_end = self.on_task_end
            self.on_task_begin = self._governed_on_task_begin  # type: ignore[method-assign]
            self.on_task_end = self._governed_on_task_end  # type: ignore[method-assign]
            from repro.governor import L1_EAGER_RELEASE, L2_AGGREGATES_ONLY

            governor.attach_gauge(
                "pool_nodes",
                # held_count (free list + virgin slab stock) keeps the
                # gauge honest about slab memory the pool retains.
                lambda: sum(t.pool.live_count + t.pool.held_count for t in self.threads),
            )
            governor.on_level(L1_EAGER_RELEASE, self._ladder_eager_release)
            governor.on_level(L2_AGGREGATES_ONLY, self._ladder_aggregates_only)

    @property
    def truncated_enters(self) -> int:
        """Region enters folded away by the call-path depth limit."""
        return sum(t.truncated_enters for t in self.threads)

    # -- listener protocol -------------------------------------------------
    def on_enter(self, thread_id: int, region: Region, time: float, parameter=None) -> None:
        self.threads[thread_id].enter(region, time, parameter)

    def on_exit(self, thread_id: int, region: Region, time: float) -> None:
        self.threads[thread_id].exit(region, time)

    def on_task_begin(
        self, thread_id: int, region: Region, instance: InstanceId, time: float, parameter=None
    ) -> None:
        self.threads[thread_id].task_begin(region, instance, time, parameter)

    def on_task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        profiler = self.threads[thread_id]
        if not is_implicit(instance):
            data = self.instance_table.get(instance)
            if data is None:
                raise ProfileError(f"task_switch to unknown instance {instance}")
        profiler.task_switch(instance, time)

    def on_task_end(self, thread_id: int, region: Region, instance: InstanceId, time: float) -> None:
        self.threads[thread_id].task_end(region, instance, time)

    def on_metric(self, thread_id: int, counters: dict, time: float) -> None:
        self.threads[thread_id].metric(counters)

    def on_phase_begin(self, name: str) -> None:
        for thread in self.threads:
            thread.concurrency.start_phase(name)

    def on_phase_end(self, name: str) -> None:
        for thread in self.threads:
            thread.concurrency.end_phase()

    def on_finish(self, time: float) -> None:
        """End of measurement: close every thread's implicit root."""
        if self.instance_table:
            raise ProfileError(
                f"measurement finished with active instances: "
                f"{sorted(self.instance_table)}"
            )
        for thread in self.threads:
            thread.finish(time)
        self.finished = True
        self._finish_time = time

    # -- batched dispatch --------------------------------------------------
    def on_batch(self, batch) -> None:
        """Consume one columnar event batch (the deferred-analysis path).

        Strict ungoverned mode -- the hot path -- decodes each packed
        code and calls the per-thread handlers directly, saving the
        listener-protocol frame per event.  Lenient or governed mode
        replays through ``self.on_*`` attribute lookup instead, so the
        shadowed salvage/governed handlers observe every event exactly
        as under per-event dispatch.  Either way the event sequence each
        :class:`ThreadTaskProfiler` sees is identical to the legacy
        path, which is what keeps the cubes byte-identical.
        """
        codes = batch.codes
        times = batch.times
        payloads = batch.payloads
        lookup = batch.registry.lookup
        if not self.strict or self.governor is not None:
            on_enter = self.on_enter
            on_exit = self.on_exit
            on_task_begin = self.on_task_begin
            on_task_end = self.on_task_end
            on_task_switch = self.on_task_switch
            on_metric = self.on_metric
            for i, code in enumerate(codes):
                kind = code & KIND_MASK
                tid = (code >> TID_SHIFT) & TID_MASK
                if kind == K_ENTER:
                    on_enter(
                        tid,
                        lookup((code >> RID_SHIFT) & RID_MASK),
                        times[i],
                        payloads[i] if code & F_PAYLOAD else None,
                    )
                elif kind == K_EXIT:
                    on_exit(tid, lookup((code >> RID_SHIFT) & RID_MASK), times[i])
                elif kind == K_TASK_BEGIN:
                    zz = code >> INST_SHIFT
                    on_task_begin(
                        tid,
                        lookup((code >> RID_SHIFT) & RID_MASK),
                        (zz >> 1) if not zz & 1 else -((zz + 1) >> 1),
                        times[i],
                        payloads[i] if code & F_PAYLOAD else None,
                    )
                elif kind == K_TASK_END:
                    zz = code >> INST_SHIFT
                    on_task_end(
                        tid,
                        lookup((code >> RID_SHIFT) & RID_MASK),
                        (zz >> 1) if not zz & 1 else -((zz + 1) >> 1),
                        times[i],
                    )
                elif kind == K_TASK_SWITCH:
                    zz = code >> INST_SHIFT
                    on_task_switch(
                        tid, (zz >> 1) if not zz & 1 else -((zz + 1) >> 1), times[i]
                    )
                elif kind == K_METRIC:
                    on_metric(tid, payloads[i], times[i])
            return
        threads = self.threads
        instance_table = self.instance_table
        for i, code in enumerate(codes):
            kind = code & KIND_MASK
            thread = threads[(code >> TID_SHIFT) & TID_MASK]
            if kind == K_ENTER:
                thread.enter(
                    lookup((code >> RID_SHIFT) & RID_MASK),
                    times[i],
                    payloads[i] if code & F_PAYLOAD else None,
                )
            elif kind == K_EXIT:
                thread.exit(lookup((code >> RID_SHIFT) & RID_MASK), times[i])
            elif kind == K_TASK_BEGIN:
                zz = code >> INST_SHIFT
                thread.task_begin(
                    lookup((code >> RID_SHIFT) & RID_MASK),
                    (zz >> 1) if not zz & 1 else -((zz + 1) >> 1),
                    times[i],
                    payloads[i] if code & F_PAYLOAD else None,
                )
            elif kind == K_TASK_END:
                zz = code >> INST_SHIFT
                thread.task_end(
                    lookup((code >> RID_SHIFT) & RID_MASK),
                    (zz >> 1) if not zz & 1 else -((zz + 1) >> 1),
                    times[i],
                )
            elif kind == K_TASK_SWITCH:
                zz = code >> INST_SHIFT
                instance = (zz >> 1) if not zz & 1 else -((zz + 1) >> 1)
                if instance >= 0 and instance_table.get(instance) is None:
                    raise ProfileError(
                        f"task_switch to unknown instance {instance}"
                    )
                thread.task_switch(instance, times[i])
            elif kind == K_METRIC:
                thread.metric(payloads[i])

    # -- lenient (salvage) listener variants -------------------------------
    # Installed as instance attributes by __init__(strict=False); the class
    # methods above stay untouched for the strict hot path.
    def _quarantine(self, instance: InstanceId, time: float, reason: str) -> None:
        """Evict an instance whose event history cannot be trusted."""
        self.salvage.quarantine(instance, reason)
        data = self.instance_table.pop(instance, None)
        if data is None:
            return
        for thread in self.threads:
            if thread.current is data:
                thread.salvage_drop_current(time)
        tracker = data.home_tracker
        if tracker is not None and tracker.current > 0:
            tracker.instance_completed()
        if data.home_pool is not None:
            data.home_pool.release_tree(data.root)

    def _salvage_on_enter(self, thread_id, region, time, parameter=None) -> None:
        self.salvage.events_seen += 1
        try:
            self.threads[thread_id].enter(region, time, parameter)
        except ProfileError as exc:
            self.salvage.events_dropped += 1
            self.salvage.note(f"dropped enter {region.name!r}: {exc}")

    def _salvage_on_exit(self, thread_id, region, time) -> None:
        self.salvage.events_seen += 1
        try:
            self.threads[thread_id].exit(region, time)
        except ProfileError as exc:
            self.salvage.events_dropped += 1
            self.salvage.note(f"dropped exit {region.name!r}: {exc}")

    def _salvage_on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        self.salvage.events_seen += 1
        try:
            self.threads[thread_id].task_begin(region, instance, time, parameter)
        except ProfileError as exc:
            self.salvage.events_dropped += 1
            self._quarantine(instance, time, f"task_begin failed: {exc}")

    def _salvage_on_task_switch(self, thread_id, instance, time) -> None:
        self.salvage.events_seen += 1
        try:
            self.threads[thread_id].task_switch(instance, time)
        except ProfileError as exc:
            # task_switch leaves the thread on its implicit task when the
            # target is unusable, which is a consistent state to continue
            # from; the failed switch itself is simply not performed.
            self.salvage.events_dropped += 1
            self.salvage.note(f"dropped task_switch to {instance}: {exc}")

    def _salvage_on_task_end(self, thread_id, region, instance, time) -> None:
        self.salvage.events_seen += 1
        try:
            self.threads[thread_id].task_end(region, instance, time)
            self.salvage.instances_completed += 1
        except ProfileError as exc:
            self.salvage.events_dropped += 1
            self._quarantine(instance, time, f"task_end failed: {exc}")

    def _salvage_on_finish(self, time) -> None:
        for instance in sorted(self.instance_table):
            self._quarantine(instance, time, "still active at end of measurement")
        for thread in self.threads:
            thread.salvage_finish(time)
        self.finished = True
        self._finish_time = time

    # -- governed listener variants ----------------------------------------
    # Installed as instance attributes by __init__(governor=...); they wrap
    # whatever task_begin/task_end handlers were installed below them
    # (strict or lenient) and apply the degradation ladder to new instances.
    def _ladder_eager_release(self) -> None:
        """L1: pools stop retaining freed nodes (eager reclamation)."""
        for thread in self.threads:
            thread.pool.max_free = 0
            thread.pool.trim(0)

    def _ladder_aggregates_only(self) -> None:
        """L2: trim pool free lists down to the configured residue."""
        max_free = self.governor.budget.l2_max_free
        for thread in self.threads:
            thread.pool.max_free = max_free
            thread.pool.trim(max_free)

    def _governed_on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        from repro.governor import L2_AGGREGATES_ONLY, L3_STUB_ONLY

        governor = self.governor
        level = governor.check(time)  # may raise MemoryPressureStop (L4)
        stub = level >= L3_STUB_ONLY
        if level >= L2_AGGREGATES_ONLY:
            # Aggregates-only: drop the per-instance parameter split so
            # all instances of the construct merge into one subtree.
            parameter = None
        self._base_on_task_begin(thread_id, region, instance, time, parameter)
        data = self.instance_table.get(instance)
        if data is None:
            # Lenient base handler dropped/quarantined the begin.
            return
        governor.note_instance_begun(time, stub=stub)
        if stub:
            data.stub_only = True
            self._gov_stub.add(instance)
        else:
            self._gov_live.add(instance)

    def _governed_on_task_end(self, thread_id, region, instance, time) -> None:
        self._base_on_task_end(thread_id, region, instance, time)
        if instance in self._gov_stub:
            self._gov_stub.discard(instance)
            self.governor.note_instance_completed(stub=True)
        elif instance in self._gov_live:
            self._gov_live.discard(instance)
            self.governor.note_instance_completed(stub=False)

    # -- results -----------------------------------------------------------
    def build_profile(self):
        """Package the finished measurement into a :class:`Profile`."""
        from repro.profiling.profile import Profile

        if not self.finished:
            raise ProfileError("build_profile() before on_finish()")
        return Profile.from_task_profiler(self)
