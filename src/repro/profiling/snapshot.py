"""Mid-run snapshots of a live :class:`TaskProfiler`.

The recorder's checkpoints need a *consistent* cube partial while the
measured run is still mutating the profiler.  The approach: clone the
whole profiler (call trees, instance table, pools, concurrency
trackers), then force-finish the **copy** with the lenient salvage path
so in-flight task instances are quarantined instead of crashing the
snapshot.  The live profiler is never touched -- strict mode, governed
wrappers, everything keeps running untouched.

Cloning is safe here because the lenient/governed handler shadowing
installs *bound methods as instance attributes*; both pickle's and
deepcopy's memoization rebind those to the copy, so the clone's
handlers mutate the clone.  The simulated runtime is single-threaded
per run, so there is no torn-state race to worry about either.
"""

from __future__ import annotations

import copy
import pickle

from repro.profiling.salvage import SalvageReport
from repro.profiling.task_profiler import TaskProfiler


def _clone_profiler(profiler: TaskProfiler) -> TaskProfiler:
    """A consistent private copy of the live profiler.

    Checkpoints run on the measured run's clock, so the copy is the
    snapshot's whole cost: a ``pickle`` round-trip is several times
    faster than ``copy.deepcopy`` on real call trees and produces the
    same object graph.  Profilers holding unpicklable state (e.g. a
    governed wrapper closing over gauge callables) fall back to
    ``deepcopy``.
    """
    try:
        return pickle.loads(
            pickle.dumps(profiler, protocol=pickle.HIGHEST_PROTOCOL)
        )
    except Exception:
        return copy.deepcopy(profiler)


def snapshot_profiler(profiler: TaskProfiler, time: float):
    """Return a finished :class:`~repro.profiling.profile.Profile`
    reflecting the profiler's state at ``time``, without disturbing it.

    In-flight task instances in the copy are quarantined by the salvage
    finish, so the snapshot's ``salvage`` section records exactly how
    partial the partial is.
    """
    clone = _clone_profiler(profiler)
    # The clone must not share the live run's governor plumbing; its
    # only job is to finish and be read.
    clone.governor = None
    if clone.salvage is None:
        clone.salvage = SalvageReport()
    clone.salvage.note(f"checkpoint snapshot at t={time:g}")
    TaskProfiler._salvage_on_finish(clone, time)
    return clone.build_profile()


def snapshot_profile_dict(profiler: TaskProfiler, time: float) -> dict:
    """Snapshot as a canonical profile dictionary (cube partial).

    The clone is a large, short-lived object graph full of reference
    cycles (call-tree parent links), which makes it pure poison for the
    generational collector: a threshold collection mid-snapshot scans
    the whole transient graph, and afterwards the cyclic garbage sits
    in gen2 taxing every later collection of the measured run.  So the
    collector is paused for the snapshot's lifetime and the cycles are
    reclaimed eagerly once the dict is out.
    """
    import gc

    from repro.cube.export import profile_to_dict

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        result = profile_to_dict(snapshot_profiler(profiler, time))
    finally:
        if gc_was_enabled:
            gc.enable()
    # With the collector paused above, the clone was never promoted: its
    # cycles all sit in generation 0, so a young-only collection frees
    # them without scanning the measured run's whole live heap.
    gc.collect(0)
    return result


__all__ = ["snapshot_profiler", "snapshot_profile_dict"]
