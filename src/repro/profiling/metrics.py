"""Metric storage for call-tree nodes.

The paper (Section IV-A): "Each node in the call tree ... stores the
required data on certain metrics, e.g., the inclusive runtime and the
number of visits, together with information required for statistical
analysis, i.e. the sum, the minimum, the maximum and the number of
samples."  :class:`StatAccumulator` is that statistical record;
:class:`NodeMetrics` bundles it with the running inclusive time and visit
count.
"""

from __future__ import annotations

import math
from typing import Optional


class StatAccumulator:
    """Streaming sum / min / max / count over per-visit durations.

    Mean is derived (``total / count``).  Accumulators merge associatively
    and commutatively, which the task profiler relies on when folding
    completed instance trees into per-construct aggregate trees in whatever
    order instances happen to finish.
    """

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.minimum: float = math.inf
        self.maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "StatAccumulator") -> None:
        """Fold another accumulator into this one."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def empty(self) -> bool:
        return self.count == 0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def copy(self) -> "StatAccumulator":
        out = StatAccumulator()
        out.merge(self)
        return out

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean if self.count else None,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StatAccumulator):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def __repr__(self) -> str:
        if self.empty:
            return "StatAccumulator(empty)"
        return (
            f"StatAccumulator(n={self.count}, sum={self.total:.3f}, "
            f"min={self.minimum:.3f}, max={self.maximum:.3f}, mean={self.mean:.3f})"
        )


class NodeMetrics:
    """Metrics attached to one call-tree node.

    Attributes
    ----------
    inclusive_time:
        Total virtual time spent inside this node including children.  For
        task *stub* nodes this is the task-execution time observed inside
        the parent scheduling point.
    visits:
        Number of times the node was entered.  For stub nodes this counts
        executed task *fragments* (paper Section IV-B4).
    durations:
        Per-visit (for task roots: per-instance) duration statistics.
    """

    __slots__ = ("inclusive_time", "visits", "durations", "counters")

    def __init__(self) -> None:
        self.inclusive_time: float = 0.0
        self.visits: int = 0
        self.durations = StatAccumulator()
        #: hardware-counter-style custom metrics (flops, bytes, ...),
        #: lazily allocated -- most nodes carry none.
        self.counters: Optional[dict] = None

    def record_visit(self, duration: float) -> None:
        """Account one completed visit of the node."""
        self.inclusive_time += duration
        self.visits += 1
        self.durations.add(duration)

    def add_time(self, duration: float) -> None:
        """Account time without a completed-visit sample (stub fragments)."""
        self.inclusive_time += duration

    def count_fragment(self) -> None:
        """Count one task fragment execution (stub nodes)."""
        self.visits += 1

    def add_counters(self, counters: dict) -> None:
        """Accumulate custom counter values (flops, bytes, ...)."""
        if self.counters is None:
            self.counters = {}
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        """Value of one custom counter (0.0 when never recorded)."""
        if self.counters is None:
            return 0.0
        return self.counters.get(name, 0.0)

    def merge(self, other: "NodeMetrics") -> None:
        self.inclusive_time += other.inclusive_time
        self.visits += other.visits
        self.durations.merge(other.durations)
        if other.counters:
            self.add_counters(other.counters)

    def reset(self) -> None:
        self.inclusive_time = 0.0
        self.visits = 0
        self.durations.reset()
        self.counters = None

    def as_dict(self) -> dict:
        return {
            "inclusive_time": self.inclusive_time,
            "visits": self.visits,
            "durations": self.durations.as_dict(),
            "counters": dict(self.counters) if self.counters else {},
        }

    def __repr__(self) -> str:
        return (
            f"NodeMetrics(inclusive={self.inclusive_time:.3f}, "
            f"visits={self.visits})"
        )


def format_time(us: float, unit: Optional[str] = None) -> str:
    """Render a virtual-microsecond duration with a sensible unit.

    ``unit`` forces one of ``'us'``, ``'ms'``, ``'s'``; otherwise the
    magnitude picks it.  Used by the CUBE-style renderer and the report
    tables.
    """
    if unit is None:
        if abs(us) >= 1e6:
            unit = "s"
        elif abs(us) >= 1e3:
            unit = "ms"
        else:
            unit = "us"
    if unit == "s":
        return f"{us / 1e6:.3f} s"
    if unit == "ms":
        return f"{us / 1e3:.3f} ms"
    if unit == "us":
        return f"{us:.3f} us"
    raise ValueError(f"unknown unit {unit!r}")
