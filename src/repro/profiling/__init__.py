"""Task-aware call-path profiling (the paper's core contribution).

Modules:

* :mod:`repro.profiling.metrics` -- per-node metric storage: inclusive
  time, visit counts, and the sum/min/max/count statistics the paper keeps
  for statistical analysis of task instances.
* :mod:`repro.profiling.calltree` -- the call-tree data structure with
  region-keyed children, parameter-qualified nodes, and recursive merge.
* :mod:`repro.profiling.pool` -- recycling allocator for task-instance
  tree nodes ("task instance's data structures are kept for later reuse",
  Section IV-C).
* :mod:`repro.profiling.basic` -- the classic (pre-tasking) Score-P
  profiling algorithm; rejects streams that violate the nesting condition.
* :mod:`repro.profiling.task_profiler` -- the Fig. 12 task profiling
  algorithm: task-instance table, current-task pointer, stub nodes under
  scheduling points, pause/resume of open-region timing across suspension,
  and merging completed instance trees into per-construct aggregate trees.
* :mod:`repro.profiling.baselines` -- the rejected/naive designs the paper
  argues against: creation-node attribution (Fig. 3, negative exclusive
  times) and instance-blind bracketing (Fürlinger/Skinner).
* :mod:`repro.profiling.profile` -- the run-level profile container.
* :mod:`repro.profiling.memory` -- concurrent-instance-tree accounting
  (paper Section V-B, Table II).
"""

from repro.profiling.metrics import NodeMetrics, StatAccumulator
from repro.profiling.calltree import CallTreeNode, NodeKey
from repro.profiling.pool import NodePool
from repro.profiling.basic import ClassicProfiler
from repro.profiling.task_profiler import TaskProfiler, ThreadTaskProfiler
from repro.profiling.baselines import CreationNodeProfiler, NoInstanceProfiler
from repro.profiling.profile import Profile
from repro.profiling.memory import ConcurrencyTracker
from repro.profiling.salvage import SalvageReport

__all__ = [
    "NodeMetrics",
    "StatAccumulator",
    "CallTreeNode",
    "NodeKey",
    "NodePool",
    "ClassicProfiler",
    "TaskProfiler",
    "ThreadTaskProfiler",
    "CreationNodeProfiler",
    "NoInstanceProfiler",
    "Profile",
    "ConcurrencyTracker",
    "SalvageReport",
]
