"""Concurrent task-instance accounting (paper Section V-B, Table II).

"we maintain a counter for the current number of task trees per thread and
store the counter's maximum value for each parallel region."

:class:`ConcurrencyTracker` is that counter.  The runtime notifies it of
parallel-region boundaries (phases); the task profiler notifies it when an
instance tree is created (task begins execution -- *not* when the task is
created) and when it is merged away (task completes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Synthetic phase name instances begun outside any parallel region are
#: attributed to, so ``phase_max`` never under-reads ``overall_max``.
NO_PHASE = "<no-phase>"


class ConcurrencyTracker:
    """Per-thread counter of live task-instance trees with per-phase maxima."""

    __slots__ = ("current", "overall_max", "_phase", "phase_max", "total_instances")

    def __init__(self) -> None:
        #: number of instance trees currently alive on this thread
        self.current: int = 0
        #: maximum ever observed
        self.overall_max: int = 0
        self._phase: Optional[str] = None
        #: phase name -> maximum concurrent instance trees within the phase
        self.phase_max: Dict[str, int] = {}
        #: total instances ever begun on this thread
        self.total_instances: int = 0

    # ------------------------------------------------------------------
    def start_phase(self, name: str) -> None:
        """Begin a measurement phase (one parallel region)."""
        self._phase = name
        self.phase_max.setdefault(name, 0)

    def end_phase(self) -> None:
        self._phase = None

    # ------------------------------------------------------------------
    def instance_created(self) -> None:
        self.current += 1
        self.total_instances += 1
        if self.current > self.overall_max:
            self.overall_max = self.current
        # Outside a phase the maximum is still recorded, under a synthetic
        # name: max(phase_max.values()) must never under-read overall_max
        # (governor watermarks are computed from it).
        phase = self._phase if self._phase is not None else NO_PHASE
        if self.current > self.phase_max.get(phase, 0):
            self.phase_max[phase] = self.current

    def instance_completed(self) -> None:
        if self.current <= 0:
            raise ValueError("instance_completed with no live instances")
        self.current -= 1

    def as_dict(self) -> dict:
        return {
            "overall_max": self.overall_max,
            "total_instances": self.total_instances,
            "phase_max": dict(self.phase_max),
        }


def max_concurrent_per_thread(trackers: List[ConcurrencyTracker]) -> int:
    """Table II's headline number: max over threads of per-thread maxima."""
    return max((t.overall_max for t in trackers), default=0)
