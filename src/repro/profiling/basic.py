"""The classic (pre-tasking) Score-P profiling algorithm.

Paper Section IV-A: a per-thread call tree is built from the enter/exit
event stream; each enter descends (creating the child on first visit),
each exit ascends and attributes the inclusive duration.  The algorithm
*requires* the nesting condition -- it raises
:class:`~repro.errors.EventOrderError` on the interleaved streams that
task suspension produces (Fig. 2), which is precisely the problem the
task-aware profiler solves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import EventOrderError
from repro.events.batch import (
    F_PAYLOAD,
    K_ENTER,
    K_EXIT,
    KIND_MASK,
    RID_MASK,
    RID_SHIFT,
)
from repro.events.model import EnterEvent, ExitEvent
from repro.events.regions import Region
from repro.profiling.calltree import CallTreeNode

try:  # numpy accelerates consume_batch; the pure-Python path is exact too
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

#: A frame is (node, enter_time).
Frame = Tuple[CallTreeNode, float]

#: Gap indices sit above the region id in a leaf-pair segment key.
_GAP_SHIFT = RID_MASK.bit_length()


class ClassicProfiler:
    """Single-thread enter/exit call-path profiler.

    Parameters
    ----------
    root_region:
        Region for the tree root (conventionally the ``main`` function or
        the implicit-task region of a parallel region).
    """

    def __init__(self, root_region: Region) -> None:
        self.root = CallTreeNode(root_region)
        self._stack: List[Frame] = []
        self._root_open: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def current_node(self) -> CallTreeNode:
        """The node the profiler is currently positioned at."""
        return self._stack[-1][0] if self._stack else self.root

    @property
    def depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def enter(self, region: Region, time: float, parameter: Optional[tuple] = None) -> CallTreeNode:
        """Process an enter event; returns the node descended into."""
        if self._root_open is None:
            self._root_open = time
        if not self._stack and region is self.root.region:
            # Entering the root region itself positions us at the root node
            # (the paper: "the first event is usually the enter event of the
            # main function, for which the root node is created").
            node = self.root
        else:
            node = self.current_node.child(region, parameter)
        self._stack.append((node, time))
        return node

    def exit(self, region: Region, time: float) -> CallTreeNode:
        """Process an exit event; returns the node ascended from."""
        if not self._stack:
            raise EventOrderError(f"exit {region.name!r} with no open region")
        node, enter_time = self._stack.pop()
        if node.region is not region:
            self._stack.append((node, enter_time))
            raise EventOrderError(
                f"exit {region.name!r} does not match innermost open region "
                f"{node.region.name!r}"
            )
        node.metrics.record_visit(time - enter_time)
        return node

    # ------------------------------------------------------------------
    def feed(self, events) -> CallTreeNode:
        """Translate a whole event stream; returns the finished root.

        Only :class:`EnterEvent`/:class:`ExitEvent` are accepted -- any
        task event raises, matching the paper's observation that the
        classic algorithm cannot represent them.
        """
        for event in events:
            if isinstance(event, EnterEvent):
                self.enter(event.region, event.time, event.parameter)
            elif isinstance(event, ExitEvent):
                self.exit(event.region, event.time)
            else:
                raise EventOrderError(
                    f"classic profiler cannot process {type(event).__name__}"
                )
        return self.finish()

    def finish(self) -> CallTreeNode:
        """Check all regions closed and return the root."""
        if self._stack:
            open_names = ", ".join(n.region.name for n, _ in self._stack)
            raise EventOrderError(f"stream ended with open region(s): {open_names}")
        return self.root

    # ------------------------------------------------------------------
    # Columnar fast path
    # ------------------------------------------------------------------
    def consume_batch(self, batch) -> None:
        """Consume one :class:`~repro.events.batch.EventBatch` of
        enter/exit events, bit-identically to the per-event methods.

        The vectorized core peels **leaf pairs** -- an enter immediately
        followed by the matching exit, the overwhelming bulk of a
        fine-grained profile -- out of the stream with one boolean mask
        over the packed code column, groups them by (position, region)
        and folds each group's durations into its call-tree node in one
        visit-segment update.  Events that are not leaf pairs (the
        *residuals*: nested opens/closes, parameterized enters) replay
        through :meth:`enter`/:meth:`exit` interleaved with the segments
        in stream order, so arbitrarily nested streams fold in exactly
        the order the legacy path would.

        Bit-identity notes: segment sums use Python's builtin ``sum``
        (a strict left fold, identical to repeated ``+=``); numpy is
        used only for masking, grouping and min/max (comparisons are
        order-free and exact).  Without numpy the whole batch replays
        per-event -- same results, legacy speed.

        Raises :class:`~repro.errors.EventOrderError` on task-lifecycle
        or metric events (the classic algorithm cannot represent them)
        and on mismatched nesting, like the per-event path.  As with any
        streaming consumer, state updated before the offending event is
        retained.
        """
        codes = batch.codes
        n = len(codes)
        if n == 0:
            return
        lookup = batch.registry.lookup
        payloads = batch.payloads
        enter = self.enter
        exit_ = self.exit
        if _np is None:
            times = batch.times
            for j in range(n):
                code = codes[j]
                kind = code & KIND_MASK
                if kind == K_ENTER:
                    enter(
                        lookup((code >> RID_SHIFT) & RID_MASK),
                        times[j],
                        payloads.get(j),
                    )
                elif kind == K_EXIT:
                    exit_(lookup((code >> RID_SHIFT) & RID_MASK), times[j])
                else:
                    raise EventOrderError(
                        f"classic profiler cannot process batch event kind {kind}"
                    )
            return
        cd = _np.frombuffer(codes, dtype=_np.int64)
        tm = _np.frombuffer(batch.times, dtype=_np.float64)
        kinds = cd & KIND_MASK
        if kinds.max() > K_EXIT:
            bad = int(kinds[kinds > K_EXIT][0])
            raise EventOrderError(
                f"classic profiler cannot process batch event kind {bad}"
            )
        rids = (cd >> RID_SHIFT) & RID_MASK
        is_enter = kinds == K_ENTER
        # Leaf-pair mask: enter at i, exit at i+1, same region, and no
        # parameter payload on the enter (parameterized enters split
        # call-tree children, so they take the exact per-event path).
        lp = (
            is_enter[:-1]
            & ~is_enter[1:]
            & (rids[:-1] == rids[1:])
            & ((cd[:-1] & F_PAYLOAD) == 0)
        )
        pair_i = _np.nonzero(lp)[0]
        if pair_i.size == 0:
            kl = kinds.tolist()
            rl = rids.tolist()
            tl = tm.tolist()
            for j in range(n):
                if kl[j] == K_ENTER:
                    enter(lookup(rl[j]), tl[j], payloads.get(j))
                else:
                    exit_(lookup(rl[j]), tl[j])
            return
        # Residuals = everything not covered by a pair, in stream order.
        res_mask = _np.ones(n, dtype=bool)
        res_mask[pair_i] = False
        res_mask[pair_i + 1] = False
        res_i = _np.nonzero(res_mask)[0]
        # Each pair belongs to the *gap* after `gaps[k]` residuals; pairs
        # in the same gap with the same region fold into one segment.
        gaps = _np.searchsorted(res_i, pair_i)
        durs = tm[pair_i + 1] - tm[pair_i]
        # Key layout: gap index above the full 20-bit region id (the id
        # is already right-aligned here, unlike in the packed code).
        keys = (gaps.astype(_np.int64) << _GAP_SHIFT) | rids[pair_i]
        order = _np.argsort(keys, kind="stable")
        sk = keys[order]
        sd = durs[order]
        cut = _np.nonzero(sk[1:] != sk[:-1])[0] + 1
        starts = _np.concatenate((_np.zeros(1, dtype=_np.intp), cut))
        mins = _np.minimum.reduceat(sd, starts).tolist()
        maxs = _np.maximum.reduceat(sd, starts).tolist()
        seg_key = sk[starts].tolist()
        starts_l = starts.tolist()
        starts_l.append(sd.size)
        sd_list = sd.tolist()
        # Segments must apply in the stream order of their *first* pair,
        # not key order: first-touch order decides where a new child is
        # inserted in its parent's dict, and the legacy path inserts in
        # stream order.  (Stable sort => sorted pair positions ascend
        # within a segment, so the segment's start holds its first pair;
        # pairs in gap g all precede pairs in gap g+1, keeping this
        # iteration gap-monotonic for the residual-replay loop below.)
        seg_order = _np.argsort(pair_i[order][starts]).tolist()
        kl = kinds[res_i].tolist()
        rl = rids[res_i].tolist()
        tml = tm[res_i].tolist()
        res_l = res_i.tolist()
        first_t = float(tm[0])
        r = 0
        parent = None
        stack_empty = False
        nres = len(res_l)
        for s in seg_order:
            key = seg_key[s]
            g = key >> _GAP_SHIFT
            while r < g:
                # Replay the residuals that precede this gap.
                j = res_l[r]
                if kl[r] == K_ENTER:
                    enter(lookup(rl[r]), tml[r], payloads.get(j))
                else:
                    exit_(lookup(rl[r]), tml[r])
                r += 1
                parent = None
            if parent is None:
                parent = self.current_node
                stack_empty = not self._stack
                if self._root_open is None:
                    self._root_open = first_t
            regu = lookup(key & RID_MASK)
            node = (
                self.root
                if (stack_empty and regu is self.root.region)
                else parent.child(regu)
            )
            m = node.metrics
            acc = m.durations
            a = starts_l[s]
            b = starts_l[s + 1]
            seg = sd_list[a:b]
            if m.inclusive_time == acc.total:
                # record_visit is this node's only mutator so far: one
                # shared left fold covers both accumulators.
                tot = sum(seg, acc.total)
                m.inclusive_time = tot
                acc.total = tot
            else:
                m.inclusive_time = sum(seg, m.inclusive_time)
                acc.total = sum(seg, acc.total)
            cnt = b - a
            m.visits += cnt
            acc.count += cnt
            if mins[s] < acc.minimum:
                acc.minimum = mins[s]
            if maxs[s] > acc.maximum:
                acc.maximum = maxs[s]
        while r < nres:
            j = res_l[r]
            if kl[r] == K_ENTER:
                enter(lookup(rl[r]), tml[r], payloads.get(j))
            else:
                exit_(lookup(rl[r]), tml[r])
            r += 1
