"""The classic (pre-tasking) Score-P profiling algorithm.

Paper Section IV-A: a per-thread call tree is built from the enter/exit
event stream; each enter descends (creating the child on first visit),
each exit ascends and attributes the inclusive duration.  The algorithm
*requires* the nesting condition -- it raises
:class:`~repro.errors.EventOrderError` on the interleaved streams that
task suspension produces (Fig. 2), which is precisely the problem the
task-aware profiler solves.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import EventOrderError
from repro.events.model import EnterEvent, ExitEvent
from repro.events.regions import Region
from repro.profiling.calltree import CallTreeNode

#: A frame is (node, enter_time).
Frame = Tuple[CallTreeNode, float]


class ClassicProfiler:
    """Single-thread enter/exit call-path profiler.

    Parameters
    ----------
    root_region:
        Region for the tree root (conventionally the ``main`` function or
        the implicit-task region of a parallel region).
    """

    def __init__(self, root_region: Region) -> None:
        self.root = CallTreeNode(root_region)
        self._stack: List[Frame] = []
        self._root_open: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def current_node(self) -> CallTreeNode:
        """The node the profiler is currently positioned at."""
        return self._stack[-1][0] if self._stack else self.root

    @property
    def depth(self) -> int:
        return len(self._stack)

    # ------------------------------------------------------------------
    def enter(self, region: Region, time: float, parameter: Optional[tuple] = None) -> CallTreeNode:
        """Process an enter event; returns the node descended into."""
        if self._root_open is None:
            self._root_open = time
        if not self._stack and region is self.root.region:
            # Entering the root region itself positions us at the root node
            # (the paper: "the first event is usually the enter event of the
            # main function, for which the root node is created").
            node = self.root
        else:
            node = self.current_node.child(region, parameter)
        self._stack.append((node, time))
        return node

    def exit(self, region: Region, time: float) -> CallTreeNode:
        """Process an exit event; returns the node ascended from."""
        if not self._stack:
            raise EventOrderError(f"exit {region.name!r} with no open region")
        node, enter_time = self._stack.pop()
        if node.region is not region:
            self._stack.append((node, enter_time))
            raise EventOrderError(
                f"exit {region.name!r} does not match innermost open region "
                f"{node.region.name!r}"
            )
        node.metrics.record_visit(time - enter_time)
        return node

    # ------------------------------------------------------------------
    def feed(self, events) -> CallTreeNode:
        """Translate a whole event stream; returns the finished root.

        Only :class:`EnterEvent`/:class:`ExitEvent` are accepted -- any
        task event raises, matching the paper's observation that the
        classic algorithm cannot represent them.
        """
        for event in events:
            if isinstance(event, EnterEvent):
                self.enter(event.region, event.time, event.parameter)
            elif isinstance(event, ExitEvent):
                self.exit(event.region, event.time)
            else:
                raise EventOrderError(
                    f"classic profiler cannot process {type(event).__name__}"
                )
        return self.finish()

    def finish(self) -> CallTreeNode:
        """Check all regions closed and return the root."""
        if self._stack:
            open_names = ", ".join(n.region.name for n, _ in self._stack)
            raise EventOrderError(f"stream ended with open region(s): {open_names}")
        return self.root
