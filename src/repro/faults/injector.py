"""Executes a :class:`~repro.faults.plan.FaultPlan` against one run.

Two independent attack surfaces, mirroring how real measurement stacks
fail:

* **Task faults** hit the simulated application: a victim task body
  raises :class:`~repro.errors.FaultInjectionError` mid-execution, or
  computes for a huge (virtual) duration so the region never finishes
  on time -- the bait for ``RuntimeConfig.watchdog_us``.
* **Stream faults** hit the recorded trace: events are dropped,
  duplicated, emitted out of order, time-shifted, or cut off entirely,
  while the live run itself stays healthy.  This models trace-buffer
  overruns and clock drift, and is applied at record time through
  :meth:`~repro.events.stream.ProgramTrace.attach_injector`.

Both surfaces draw from child RNGs of the plan seed, so the same plan
perturbs the same run identically every time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.errors import FaultInjectionError
from repro.events.model import AnyEvent
from repro.faults.plan import FaultPlan
from repro.sim.rng import DeterministicRNG

#: Integer RNG salts (strings hash nondeterministically across processes).
_TASK_SALT = 101
_STREAM_SALT = 202


class FaultInjector:
    """One run's worth of seeded fault decisions."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        root = DeterministicRNG(plan.seed)
        self._task_rng = root.spawn(_TASK_SALT)
        self._stream_rng = root.spawn(_STREAM_SALT)
        self._task_faults = 0
        self._recorded = 0
        #: per-thread event withheld for reordering (emitted one event late)
        self._held: Dict[int, AnyEvent] = {}
        self.stats = {
            "tasks_failed": 0,
            "tasks_stuck": 0,
            "events_dropped": 0,
            "events_duplicated": 0,
            "events_reordered": 0,
            "events_skewed": 0,
            "events_truncated": 0,
        }

    # ------------------------------------------------------------------
    # Task faults (called by OpenMPRuntime.new_task / WorkerThread)
    # ------------------------------------------------------------------
    def on_new_task(self, task) -> None:
        """Decide this instance's fate; sets ``task.injected_fault``."""
        plan = self.plan
        if self._task_faults >= plan.max_task_faults:
            return
        roll = self._task_rng.uniform(0.0, 1.0)
        if roll < plan.task_exception_rate:
            task.injected_fault = "exception"
            self._task_faults += 1
        elif roll < plan.task_exception_rate + plan.stuck_task_rate:
            task.injected_fault = "stuck"
            self._task_faults += 1

    def faulty_body(self, ctx, task):
        """Replacement generator body for a victim task instance."""
        if task.injected_fault == "stuck":
            self.stats["tasks_stuck"] += 1
            # One enormous (but finite) compute: the simulation never
            # wall-clock-hangs, the watchdog deadline simply passes first.
            yield ctx.compute(self.plan.stuck_duration_us)
            return
        self.stats["tasks_failed"] += 1
        yield ctx.compute(1.0)
        raise FaultInjectionError(
            f"injected failure in task instance {task.instance_id} "
            f"({task.region.name!r}), plan seed {self.plan.seed}"
        )

    # ------------------------------------------------------------------
    # Stream faults (called through ProgramTrace.attach_injector)
    # ------------------------------------------------------------------
    def on_record(self, event: AnyEvent) -> Tuple[AnyEvent, ...]:
        """Map one recorded event to the events actually stored."""
        plan = self.plan
        rng = self._stream_rng
        thread_id = event.thread_id
        self._recorded += 1
        if plan.truncate_after is not None and self._recorded > plan.truncate_after:
            self.stats["events_truncated"] += 1
            # A truncated stream also abandons any held events.
            self._held.pop(thread_id, None)
            return ()
        out: List[AnyEvent] = []
        held = self._held.pop(thread_id, None)
        if plan.drop_rate and rng.uniform(0.0, 1.0) < plan.drop_rate:
            self.stats["events_dropped"] += 1
        else:
            if plan.clock_skew_rate and rng.uniform(0.0, 1.0) < plan.clock_skew_rate:
                skew = rng.uniform(-plan.clock_skew_us, plan.clock_skew_us)
                event = replace(event, time=max(0.0, event.time + skew))
                self.stats["events_skewed"] += 1
            if (
                held is None
                and plan.reorder_rate
                and rng.uniform(0.0, 1.0) < plan.reorder_rate
            ):
                # Withhold this event; it re-emerges after the thread's
                # next event, i.e. the two swap places in the stream.
                self._held[thread_id] = event
                self.stats["events_reordered"] += 1
                event = None
            if event is not None:
                out.append(event)
                if plan.duplicate_rate and rng.uniform(0.0, 1.0) < plan.duplicate_rate:
                    out.append(event)
                    self.stats["events_duplicated"] += 1
        if held is not None:
            out.append(held)
        return tuple(out)

    def drain(self) -> List[AnyEvent]:
        """Events still withheld for reordering at end of run."""
        held = [self._held[k] for k in sorted(self._held)]
        self._held.clear()
        return held

    # ------------------------------------------------------------------
    def summary(self) -> str:
        touched = {k: v for k, v in self.stats.items() if v}
        if not touched:
            return f"{self.plan.describe()}: nothing fired"
        body = ", ".join(f"{k}={v}" for k, v in sorted(touched.items()))
        return f"{self.plan.describe()}: {body}"
