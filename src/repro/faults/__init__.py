"""Deterministic fault injection and graceful degradation.

The paper's profiling algorithm (Fig. 12) assumes a consistent event
stream; real measurement systems see everything from crashed task bodies
to overrun trace buffers.  This subpackage makes those failure modes
*reproducible* so the rest of the stack can prove it degrades
gracefully:

* :class:`~repro.faults.plan.FaultPlan` -- a frozen, seeded description
  of which faults to inject (task-body exceptions, stuck tasks, dropped/
  duplicated/reordered events, truncated streams, clock skew).
* :class:`~repro.faults.injector.FaultInjector` -- executes a plan
  against one run: picks victim task instances and perturbs the recorded
  event stream.  Armed via ``RuntimeConfig.fault_plan``; when no plan is
  armed, none of this code is imported, let alone run.
* :mod:`repro.faults.campaign` -- the salvage pipeline (run -> repair ->
  replay -> partial profile + SalvageReport) and seeded fault campaigns
  over the BOTS kernels, surfaced as the ``repro faults`` CLI command.
* :mod:`repro.faults.crash` -- the crash-consistency harness: SIGKILLs
  real ``put()`` subprocesses mid-archive-write and injects the seeded
  :data:`~repro.faults.crash.CORRUPTION_CLASSES` that ``repro archive
  fsck`` must detect and repair.
"""

from repro.faults.plan import FaultPlan, FAULT_MODES, plan_for_mode
from repro.faults.injector import FaultInjector
from repro.faults.campaign import (
    CampaignResult,
    SalvageOutcome,
    run_campaign,
    run_tolerant,
)
from repro.faults.crash import (
    CORRUPTION_CLASSES,
    corrupt_archive,
    crash_put_cycle,
    synthetic_meta,
    synthetic_profile,
)
from repro.faults.recording import (
    RECORDING_CORRUPTION_CLASSES,
    DieAtRecordSubstrate,
    corrupt_recording,
    crash_recorded_run,
    record_until_killed,
)

__all__ = [
    "FaultPlan",
    "FAULT_MODES",
    "plan_for_mode",
    "FaultInjector",
    "CampaignResult",
    "SalvageOutcome",
    "run_campaign",
    "run_tolerant",
    "CORRUPTION_CLASSES",
    "corrupt_archive",
    "crash_put_cycle",
    "synthetic_meta",
    "synthetic_profile",
    "RECORDING_CORRUPTION_CLASSES",
    "DieAtRecordSubstrate",
    "corrupt_recording",
    "crash_recorded_run",
    "record_until_killed",
]
