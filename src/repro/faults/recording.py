"""Kill-mid-record harness: prove recordings survive SIGKILL anywhere.

The recorder promises that a SIGKILL at *any* instruction leaves a
recoverable stream: sealed chunks replay into a valid partial profile
and a torn tail is truncated, never misread.  This module attacks that
promise the same way :mod:`repro.faults.crash` attacks the archive's:

* **exact-point kills** (:func:`record_until_killed`): a subclassed
  recording substrate SIGKILLs its own process the instant record
  number ``die_after_records`` is appended -- deterministic down to the
  event, so a seeded sweep covers chunk boundaries, checkpoint
  boundaries, and everything between.
* **honest wall-clock kills** (:func:`crash_recorded_run`): a child
  records real runs in a loop and the parent SIGKILLs it after a seeded
  delay -- kills land wherever they land, including inside OS writes.
* **seeded corruption** (:func:`corrupt_recording`): bit flips,
  truncation, and garbage appends past the CRC's write path, because
  recovery must also survive damage the writer itself can never
  produce.

Everything is deterministic given ``seed`` and importable at module top
level (subprocess targets must survive ``spawn`` pickling).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from typing import Optional

from repro.substrates.recorder import RecorderSubstrate

#: Corruption classes recovery must reduce to a clean prefix.
RECORDING_CORRUPTION_CLASSES = ("flip_byte", "truncate", "garbage_append")


class DieAtRecordSubstrate(RecorderSubstrate):
    """A recorder that SIGKILLs its own process at an exact record count.

    Registered under the same ``"recorder"`` name so everything else
    (runtime injection, salvage discovery) treats it identically.
    """

    def __init__(self, die_after_records: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.die_after_records = die_after_records

    def _maybe_die(self) -> None:
        if self.records == self.die_after_records:
            os.kill(os.getpid(), signal.SIGKILL)

    def _append(self, record: tuple, time: Optional[float] = None) -> None:
        super()._append(record, time)
        self._maybe_die()

    # The base class inlines the hot callbacks past `_append` for speed,
    # so the exact-count kill has to wrap each of them as well.
    def on_enter(self, *args, **kwargs) -> None:
        super().on_enter(*args, **kwargs)
        self._maybe_die()

    def on_exit(self, *args, **kwargs) -> None:
        super().on_exit(*args, **kwargs)
        self._maybe_die()

    def on_task_begin(self, *args, **kwargs) -> None:
        super().on_task_begin(*args, **kwargs)
        self._maybe_die()

    def on_task_end(self, *args, **kwargs) -> None:
        super().on_task_end(*args, **kwargs)
        self._maybe_die()

    def on_task_switch(self, *args, **kwargs) -> None:
        super().on_task_switch(*args, **kwargs)
        self._maybe_die()

    def on_metric(self, *args, **kwargs) -> None:
        super().on_metric(*args, **kwargs)
        self._maybe_die()


def record_until_killed(
    record_dir: str,
    *,
    die_after_records: int = 1500,
    app: str = "fib",
    size: str = "small",
    seed: int = 0,
    n_threads: int = 2,
    chunk_records: int = 256,
    checkpoint_every: int = 512,
    archive_dir: Optional[str] = None,
) -> dict:
    """Run a recorded kernel and SIGKILL the process mid-record.

    The kill fires deterministically when record ``die_after_records``
    is appended; if the run is too small to ever reach it, the process
    SIGKILLs itself after the (complete) run instead, so the caller
    always observes a worker dead from signal 9 with salvageable state
    on disk.  ``archive_dir`` is accepted (and ignored here) so call
    cells can carry it for the supervisor's salvage step to find.

    Never returns under normal operation.
    """
    from repro.faults.campaign import run_tolerant

    recorder = DieAtRecordSubstrate(
        die_after_records,
        record_dir=record_dir,
        chunk_records=chunk_records,
        checkpoint_every=checkpoint_every,
    )
    run_tolerant(
        app,
        size=size,
        seed=seed,
        n_threads=n_threads,
        substrates=[recorder],
    )
    os.kill(os.getpid(), signal.SIGKILL)
    return {}  # pragma: no cover - unreachable


def _record_loop(record_dir: str, app: str, size: str, seed: int, cycles: int) -> None:
    """Child target: keep recording runs so a kill always lands mid-work."""
    from repro.faults.campaign import run_tolerant

    for _cycle in range(cycles):
        run_tolerant(
            app,
            size=size,
            seed=seed,
            record_dir=record_dir,
            chunk_records=64,
            checkpoint_every=256,
        )


def crash_recorded_run(
    record_dir: str,
    *,
    cycles: int = 3,
    seed: int = 0,
    kill_after_s: float = 0.15,
    app: str = "fib",
    size: str = "small",
) -> int:
    """SIGKILL real recording children mid-flight, ``cycles`` times.

    Each cycle records into its own subdirectory (``cycle<N>``) and is
    killed after a seeded fraction of ``kill_after_s``, so kills land at
    different stream offsets.  Returns how many children were actually
    killed rather than finishing first; callers asserting on crash
    residue should check it is nonzero.
    """
    import multiprocessing

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    killed = 0
    for cycle in range(cycles):
        cycle_dir = os.path.join(record_dir, f"cycle{cycle}")
        proc = ctx.Process(
            target=_record_loop,
            args=(cycle_dir, app, size, seed, 50),
            daemon=True,
        )
        proc.start()
        digest = hashlib.sha256(f"{seed}:{cycle}".encode()).digest()
        time.sleep(kill_after_s * (0.2 + 0.8 * digest[0] / 255.0))
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            killed += 1
        proc.join(timeout=10.0)
    return killed


def corrupt_recording(record_dir: str, kind: str, *, seed: int = 0) -> dict:
    """Damage a recorded stream in one seeded, described way.

    Returns a dict naming what was damaged so tests can assert recovery
    found *that* defect.  ``flip_byte`` flips one bit in the chunk
    region (past the file header), ``truncate`` tears the tail,
    ``garbage_append`` writes noise after the last sealed chunk.
    """
    from repro.recorder.chunks import HEADER
    from repro.recorder.store import events_path

    if kind not in RECORDING_CORRUPTION_CLASSES:
        raise ValueError(
            f"kind must be one of {RECORDING_CORRUPTION_CLASSES}, got {kind!r}"
        )
    path = events_path(record_dir)
    size = os.path.getsize(path)
    body = size - len(HEADER)
    if body <= 0:
        raise ValueError(f"stream {path!r} has no chunks to corrupt")
    digest = hashlib.sha256(f"{kind}:{seed}".encode()).digest()
    if kind == "flip_byte":
        offset = len(HEADER) + int.from_bytes(digest[:4], "big") % body
        with open(path, "rb+") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << (digest[4] % 8))]))
        return {"kind": kind, "offset": offset}
    if kind == "truncate":
        keep = len(HEADER) + int.from_bytes(digest[:4], "big") % body
        with open(path, "rb+") as handle:
            handle.truncate(keep)
        return {"kind": kind, "size": keep}
    # garbage_append
    noise = hashlib.sha256(f"noise:{seed}".encode()).digest() * 4
    with open(path, "ab") as handle:
        handle.write(noise)
    return {"kind": kind, "appended": len(noise)}
