"""Crash-consistency harness for the profile archive.

The store promises that a kill -9 at any instruction leaves it
loadable: objects and index go through atomic temp-file renames, so the
only legal residue of a crash is an *orphan object* (the object rename
landed, the index append did not).  Promises like that rot unless
something keeps trying to break them -- this module is that something.
It drives real subprocesses doing real ``put()``/``gc()`` work, kills
them with SIGKILL at arbitrary points, and hands the wreckage to
:func:`repro.archive.fsck.fsck` to prove detection and repair.

Two kinds of damage are produced:

* **honest crashes** (:func:`crash_put_cycle`): a child process loops
  ``put()``; the parent SIGKILLs it mid-loop.  Whatever state results
  is, by construction, a state the store can really reach.
* **seeded corruption** (:func:`corrupt_archive`): each of the five
  :data:`CORRUPTION_CLASSES` is injected deterministically -- including
  the classes atomic renames *prevent* (torn index lines, truncated
  objects), because fsck must also survive damage from outside the
  store's own write paths (disk rot, operator accidents, other tools).

Everything here is deterministic given ``seed`` and importable at
module top level (the subprocess targets must survive pickling under
the ``spawn`` start method).
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import signal
import time
from typing import List, Optional

from repro.archive.meta import RunMeta
from repro.archive.store import ArchiveStore
from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.calltree import CallTreeNode
from repro.profiling.profile import Profile

#: The damage classes fsck must detect and repair.
CORRUPTION_CLASSES = (
    "truncated_object",
    "bad_sha",
    "torn_index",
    "orphan_object",
    "dangling_record",
)


# ----------------------------------------------------------------------
# Synthetic archive content
# ----------------------------------------------------------------------
def synthetic_profile(serial: int) -> Profile:
    """A tiny, valid profile whose content varies with ``serial``.

    Distinct serials produce distinct canonical JSON (the duration
    encodes the serial), so consecutive ``put()`` calls exercise the
    fresh-object path rather than deduplicating into one blob.
    """
    registry = RegionRegistry()
    root = CallTreeNode(registry.register("main", RegionType.FUNCTION))
    root.metrics.record_visit(100.0 + serial)
    child = root.child(registry.register(f"work_{serial % 7}", RegionType.FUNCTION))
    child.metrics.record_visit(10.0 + serial / 8.0)
    return Profile([root], [{}])


def synthetic_meta(serial: int, *, seed: int = 0) -> RunMeta:
    return RunMeta(
        kernel="crashkit",
        size="test",
        variant="synthetic",
        n_threads=1,
        seed=seed,
        config_hash=hashlib.sha256(f"crashkit:{seed}".encode()).hexdigest()[:16],
        wall_time_us=100.0 + serial,
        source="crash-harness",
    )


# ----------------------------------------------------------------------
# Subprocess targets (importable, spawn-safe)
# ----------------------------------------------------------------------
def put_loop(root: str, start: int, count: int, seed: int = 0) -> None:
    """Archive ``count`` synthetic profiles; a kill can land anywhere."""
    store = ArchiveStore(root)
    for serial in range(start, start + count):
        store.put(synthetic_profile(serial), synthetic_meta(serial, seed=seed))


def gc_loop(root: str, passes: int = 3, keep_last: Optional[int] = None) -> None:
    """Run ``passes`` gc cycles; a kill can land mid-prune."""
    store = ArchiveStore(root)
    for _ in range(passes):
        store.gc(keep_last=keep_last)


def crash_put_cycle(
    root: str,
    *,
    cycles: int = 3,
    puts_per_cycle: int = 20,
    seed: int = 0,
    kill_after_s: float = 0.05,
) -> int:
    """SIGKILL a ``put()`` loop mid-flight, ``cycles`` times.

    Each cycle forks a child archiving ``puts_per_cycle`` profiles and
    kills it after a seeded fraction of ``kill_after_s`` -- early kills
    land mid-``put``, late ones between puts, which together cover the
    interesting interleavings.  Returns the number of children that were
    actually killed (rather than finishing first); callers asserting on
    crash residue should check it is nonzero.
    """
    import multiprocessing

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    killed = 0
    for cycle in range(cycles):
        start = cycle * puts_per_cycle
        proc = ctx.Process(
            target=put_loop, args=(root, start, puts_per_cycle, seed), daemon=True
        )
        proc.start()
        digest = hashlib.sha256(f"{seed}:{cycle}".encode()).digest()
        time.sleep(kill_after_s * (0.2 + 0.8 * digest[0] / 255.0))
        if proc.is_alive():
            os.kill(proc.pid, signal.SIGKILL)
            killed += 1
        proc.join(timeout=10.0)
    return killed


# ----------------------------------------------------------------------
# Seeded corruption injectors
# ----------------------------------------------------------------------
def _object_paths(store: ArchiveStore) -> List[str]:
    paths: List[str] = []
    objects_root = os.path.join(store.root, "objects")
    for dirpath, _dirnames, filenames in os.walk(objects_root):
        for filename in sorted(filenames):
            if filename.endswith(".json.gz"):
                paths.append(os.path.join(dirpath, filename))
    return sorted(paths)


def _pick(items: List[str], seed: int) -> str:
    if not items:
        raise ValueError("archive has no objects to corrupt")
    digest = hashlib.sha256(f"pick:{seed}".encode()).digest()
    return items[digest[0] % len(items)]


def corrupt_archive(root: str, kind: str, *, seed: int = 0) -> dict:
    """Inject one instance of a :data:`CORRUPTION_CLASSES` member.

    Returns a small dict describing what was damaged (paths, shas) so
    tests can assert fsck found *that* damage, not just *some* damage.
    """
    if kind not in CORRUPTION_CLASSES:
        raise ValueError(
            f"kind must be one of {CORRUPTION_CLASSES}, got {kind!r}"
        )
    store = ArchiveStore(root)
    if kind == "truncated_object":
        path = _pick(_object_paths(store), seed)
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(max(3, size // 2))  # keep the magic, tear the body
        return {"kind": kind, "path": path}
    if kind == "bad_sha":
        # Valid gzip, wrong content: only full verification catches it.
        path = _pick(_object_paths(store), seed)
        impostor = json.dumps({"impostor": seed}).encode()
        with open(path, "wb") as handle:
            handle.write(gzip.compress(impostor, mtime=0))
        return {"kind": kind, "path": path}
    if kind == "torn_index":
        with open(store.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"run","run_id":"r99')  # mid-append tear
        return {"kind": kind, "path": store.index_path}
    if kind == "orphan_object":
        # A valid object the index has never heard of -- exactly the
        # residue of dying between put()'s object write and index append.
        sha256, _created = store.put_object(synthetic_profile(90000 + seed))
        return {"kind": kind, "sha256": sha256}
    # dangling_record: a run record whose object never existed.
    ghost_sha = hashlib.sha256(f"ghost:{seed}".encode()).hexdigest()
    record = {
        "type": "run",
        "run_id": f"r9{seed % 100:03d}",
        "sha256": ghost_sha,
        "created": 0.0,
        "meta": synthetic_meta(0, seed=seed).to_dict(),
    }
    with open(store.index_path, "ab+") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell():
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) != b"\n":  # don't merge into a torn tail
                handle.write(b"\n")
        handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
            + b"\n"
        )
    return {"kind": kind, "sha256": ghost_sha, "run_id": record["run_id"]}
