"""Chaos harness for the campaign gateway: SIGKILL at every transition.

The gateway's contract (:mod:`repro.service`) is **kill-anywhere**: a
SIGKILL at any instant leaves every campaign in exactly one valid
state, from which recovery finishes the work with nothing lost and
nothing double-executed.  Like the archive's crash harness
(:mod:`repro.faults.crash`), this module exists to keep that promise
honest with real processes and real kills, not mocks:
:func:`crash_at_every_transition` runs one scenario per (happy-path
edge, phase) pair -- ``phase='before'`` kills after the decision but
before the ledger append (the transition must effectively not have
happened), ``phase='after'`` kills once the append is durable but
before any in-memory effect (the transition must have happened exactly
once) -- then restarts the gateway, serves to completion, resubmits
under the original idempotency key, and audits the wreckage with
:func:`repro.service.audit.verify_gateway`.

The kill is delivered by the serving process to *itself* from inside
the transition hook, which is the most surgical approximation of "the
machine died at this instruction" available without a kernel.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from typing import Dict, List, Optional, Tuple

from repro.service.audit import verify_gateway
from repro.service.gateway import Gateway
from repro.service.model import HAPPY_PATH_EDGES, CampaignSpec
from repro.supervisor.backoff import FAST_BACKOFF

#: Each scenario kills at one (edge, phase); together they cover every
#: durable step of the happy path.
KILL_PHASES = ("before", "after")

#: Stub grid the chaos campaigns run: fast, deterministic, no archive.
_CHAOS_CELLS = tuple(
    {
        "kind": "call",
        "cell_id": f"chaos{i}",
        "params": {
            "target": "repro.supervisor.stubs:ok_cell",
            "kwargs": {},
        },
    }
    for i in range(3)
)


def chaos_spec() -> CampaignSpec:
    return CampaignSpec(kind="cells", cells=_CHAOS_CELLS)


class DieAtTransition:
    """Transition hook that SIGKILLs its own process at one edge.

    Picklable (module-level class, plain attributes) so it survives the
    ``spawn`` start method; under ``fork`` it simply rides along.
    """

    def __init__(self, from_state: str, to_state: str, phase: str):
        if phase not in KILL_PHASES:
            raise ValueError(f"phase must be one of {KILL_PHASES}, got {phase!r}")
        self.from_state = from_state
        self.to_state = to_state
        self.phase = phase

    def __call__(self, _cid: str, frm: str, to: str, phase: str) -> None:
        if (frm, to, phase) == (self.from_state, self.to_state, self.phase):
            os.kill(os.getpid(), signal.SIGKILL)


def _chaos_gateway(home: str, hook: Optional[DieAtTransition]) -> Gateway:
    """Harness-tuned gateway: fast reclaim, fixed owner-independent knobs."""
    return Gateway(
        home,
        lease_ttl_s=30.0,
        reclaim_backoff=FAST_BACKOFF,
        transition_hook=hook,
    )


def serve_until_killed(home: str, from_state: str, to_state: str, phase: str) -> None:
    """Subprocess target: serve the home until the armed kill fires.

    Exits 0 only if the loop went idle without the edge ever occurring
    -- the driver treats that as a scenario failure, because a kill
    point that never fires proves nothing.
    """
    gateway = _chaos_gateway(home, DieAtTransition(from_state, to_state, phase))
    gateway.serve(run_until_idle=True)


def recover_and_finish(home: str) -> None:
    """Subprocess target: the restarted gateway finishing the backlog."""
    gateway = _chaos_gateway(home, None)
    gateway.serve(run_until_idle=True)


def _run_in_subprocess(target, args: tuple, timeout_s: float) -> Optional[int]:
    """Fork-run one target; returns its exit code (negative = signal)."""
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    # Not daemonic: the gateway's supervisor spawns worker grandchildren.
    proc = ctx.Process(target=target, args=args)
    proc.start()
    proc.join(timeout=timeout_s)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=10.0)
        return None  # hung: neither killed at the edge nor finished
    return proc.exitcode


def crash_at_every_transition(
    root: str,
    *,
    edges: Tuple[Tuple[str, str], ...] = HAPPY_PATH_EDGES,
    phases: Tuple[str, ...] = KILL_PHASES,
    timeout_s: float = 60.0,
) -> List[Dict[str, object]]:
    """Run one kill-recover-audit scenario per (edge, phase).

    Each scenario gets a fresh gateway home under ``root``.  The
    returned dicts carry everything a test needs to assert the
    contract::

        {"edge": "leased->running", "phase": "before",
         "killed": True,          # the serve process died by SIGKILL
         "final_state": "archived",
         "resubmit_dedup": True,  # idempotent resubmit did not double-run
         "audit_ok": True, "problems": []}
    """
    results: List[Dict[str, object]] = []
    for from_state, to_state in edges:
        for phase in phases:
            home = os.path.join(root, f"{from_state}-{to_state}-{phase}")
            gateway = _chaos_gateway(home, None)
            spec = chaos_spec()
            submitted, _created = gateway.submit(
                spec, idempotency_key="chaos-key"
            )
            exitcode = _run_in_subprocess(
                serve_until_killed,
                (home, from_state, to_state, phase),
                timeout_s,
            )
            killed = exitcode is not None and exitcode == -signal.SIGKILL
            recover_code = _run_in_subprocess(
                recover_and_finish, (home,), timeout_s
            )
            # Idempotent resubmission after the crash must return the
            # original campaign, not enqueue a second execution.
            gateway.refresh()
            resubmitted, created = gateway.submit(
                spec, idempotency_key="chaos-key"
            )
            resubmit_dedup = (
                not created
                and resubmitted.campaign_id == submitted.campaign_id
            )
            audit = verify_gateway(home, require_settled=True)
            gateway.refresh()
            campaign = gateway.state.get(submitted.campaign_id)
            results.append(
                {
                    "edge": f"{from_state}->{to_state}",
                    "phase": phase,
                    "killed": killed,
                    "serve_exit": exitcode,
                    "recover_exit": recover_code,
                    "final_state": campaign.state if campaign else "missing",
                    "resubmit_dedup": resubmit_dedup,
                    "audit_ok": audit.ok,
                    "problems": list(audit.problems),
                }
            )
    return results


def chaos_summary(results: List[Dict[str, object]]) -> str:
    """Fixed-width per-scenario table, harness-report style."""
    lines = [
        f"{'kill point':<26} {'phase':<7} {'killed':<7} {'final':<10} audit",
        "-" * 66,
    ]
    for row in results:
        lines.append(
            f"{row['edge']:<26} {row['phase']:<7} "
            f"{'yes' if row['killed'] else 'NO':<7} "
            f"{row['final_state']:<10} "
            f"{'ok' if row['audit_ok'] else 'FAIL'}"
        )
    bad = sum(
        1
        for row in results
        if not (row["killed"] and row["audit_ok"] and row["resubmit_dedup"])
    )
    lines.append("-" * 66)
    lines.append(
        f"{len(results) - bad}/{len(results)} kill points survived "
        f"(killed at the edge, recovered, audited clean)"
    )
    return "\n".join(lines)


__all__ = [
    "KILL_PHASES",
    "DieAtTransition",
    "chaos_spec",
    "chaos_summary",
    "crash_at_every_transition",
    "recover_and_finish",
    "serve_until_killed",
]
