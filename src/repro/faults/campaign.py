"""The salvage pipeline and seeded fault campaigns.

``run_tolerant`` is the graceful-degradation entry point: run a BOTS
kernel with (optionally) a fault plan armed, and *always* come back with
a profile -- the live one when the run was healthy, or a partial profile
rebuilt offline (repair the recorded event streams, replay them through
a lenient :class:`~repro.profiling.task_profiler.TaskProfiler`) when the
run crashed, hung, or produced a corrupt trace.  The attached
:class:`~repro.profiling.salvage.SalvageReport` says exactly how much
was lost.

``run_campaign`` sweeps corruption modes x seeds x kernels, asserting
the system-level property the paper's robustness argument needs: no
fault in the campaign grid ever produces an unhandled exception in
lenient mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bots.registry import get_program
from repro.errors import CampaignInterrupted, ReproError, WatchdogTimeout
from repro.events.regions import RegionType
from repro.events.repair import repair_streams
from repro.events.replay import replay_trace
from repro.events.stream import ProgramTrace
from repro.events.validate import collect_trace_violations
from repro.faults.plan import FAULT_MODES, FaultPlan, plan_for_mode
from repro.profiling.profile import Profile
from repro.profiling.salvage import SalvageReport
from repro.profiling.task_profiler import TaskProfiler
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import OpenMPRuntime

#: Default virtual watchdog for fault runs: generous for test-size
#: kernels (which finish in ~1e4 µs) yet far below a stuck task's 1e9.
DEFAULT_WATCHDOG_US = 1e6


def salvage_profile_from_trace(
    trace: ProgramTrace,
    implicit_region,
    start_time: float = 0.0,
    finish_time: Optional[float] = None,
) -> Tuple[Profile, SalvageReport]:
    """Repair a (possibly corrupt, possibly truncated) trace and rebuild.

    Per-thread streams are repaired offline, then replayed in global
    order through a lenient profiler.  Returns the partial profile and
    its salvage report (also reachable as ``profile.salvage``).
    """
    streams = {s.thread_id: list(s) for s in trace.streams}
    repaired, repair_log = repair_streams(streams)
    profiler = TaskProfiler(
        trace.n_threads, implicit_region, start_time=start_time, strict=False
    )
    profiler.salvage.absorb_repair(repair_log)
    replay_trace(repaired, profiler, finish_time=finish_time)
    return profiler.build_profile(), profiler.salvage


@dataclass
class SalvageOutcome:
    """What one tolerant run produced."""

    app: str
    #: 'complete' (healthy run) or 'partial' (salvaged)
    status: str
    profile: Optional[Profile]
    salvage: Optional[SalvageReport]
    #: live result when the run completed (even if its trace was corrupt)
    duration: Optional[float] = None
    verified: Optional[bool] = None
    error: Optional[str] = None
    #: the configuration the run used (for archive fingerprinting)
    config: Optional[RuntimeConfig] = None
    #: the resource governor's final report, when one was armed
    governor_report: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """A full profile, or a partial one with a non-empty report."""
        if self.profile is None:
            return False
        if self.status == "complete":
            return True
        return self.salvage is not None and self.salvage.partial

    @property
    def degraded(self) -> bool:
        """The governor reduced measurement fidelity during the run."""
        return self.salvage is not None and self.salvage.degraded


def _fold_governor(report: Optional[SalvageReport], runtime) -> Optional[dict]:
    """Copy the governor's incidents into ``report``; return its report.

    Idempotent: the runtime folds incidents itself on the healthy path,
    so this only fills reports built offline (salvage reconstruction).
    """
    governor = runtime.governor
    if governor is None:
        return None
    if (
        report is not None
        and not report.pressure_incidents
        and governor.incidents
    ):
        report.pressure_incidents.extend(i.to_dict() for i in governor.incidents)
    return governor.report()


def run_tolerant(
    name: str,
    size: str = "test",
    n_threads: int = 2,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    watchdog_us: Optional[float] = DEFAULT_WATCHDOG_US,
    variant: str = "optimized",
    wall_timeout_s: Optional[float] = None,
    substrates: Optional[Sequence] = None,
    costs=None,
    memory_budget=None,
    record_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    chunk_records: Optional[int] = None,
) -> SalvageOutcome:
    """Run a kernel, salvaging a partial profile from whatever survives.

    ``wall_timeout_s`` is carried into the config for supervised workers
    (:mod:`repro.supervisor`), which enforce it with ``SIGALRM``; plain
    in-process calls cannot interrupt a non-yielding kernel.

    ``substrates`` optionally names extra measurement substrates to
    attach; ``profiling`` and ``tracing`` are always ensured -- salvage
    needs a live profile *and* the recorded trace to reconstruct from.

    ``memory_budget`` arms the resource governor (an int, dict, or
    :class:`~repro.governor.MemoryBudget`); a plan with
    ``pressure_budget`` set (the ``pressure`` fault mode) arms it too.

    ``record_dir`` attaches the durable recording substrate
    (:mod:`repro.recorder`): the event stream is spilled to sealed
    chunks there, checkpointed every ``checkpoint_every`` records, and
    on a clean run the manifest is stamped with the live cube's content
    hash so ``repro verify`` can replay-check it byte-identically.
    """
    recorder = None
    substrate_list = list(substrates) if substrates else []
    if record_dir is not None:
        from repro.substrates.recorder import RecorderSubstrate

        recorder_kwargs = {"record_dir": record_dir}
        if checkpoint_every is not None:
            recorder_kwargs["checkpoint_every"] = checkpoint_every
        if chunk_records is not None:
            recorder_kwargs["chunk_records"] = chunk_records
        recorder = RecorderSubstrate(**recorder_kwargs)
        # A configured instance supersedes any bare "recorder" name.
        substrate_list = [s for s in substrate_list if s != "recorder"]
        substrate_list.append(recorder)
    substrate_spec: tuple = ()
    if substrate_list:
        names = list(substrate_list)
        for required in ("profiling", "tracing"):
            if required not in names:
                names.append(required)
        substrate_spec = tuple(names)
    program = get_program(name, size=size, variant=variant)
    if memory_budget is None and plan is not None and plan.pressure_budget is not None:
        memory_budget = plan.pressure_budget
    config_kwargs = dict(
        n_threads=n_threads,
        instrument=True,
        record_events=True,
        seed=seed,
        fault_plan=plan if plan is not None and plan.armed else None,
        watchdog_us=watchdog_us,
        wall_timeout_s=wall_timeout_s,
        substrates=substrate_spec,
        memory_budget=memory_budget,
    )
    if costs is not None:
        config_kwargs["costs"] = costs
    config = RuntimeConfig(**config_kwargs)
    runtime = OpenMPRuntime(config)
    implicit_region = runtime.registry.register(
        program.label, RegionType.IMPLICIT_TASK
    )
    injector = runtime.fault_injector
    fault_summary = None

    try:
        result = runtime.parallel(program.body, name=program.label)
    except ReproError as exc:
        # The live run died (injected exception, watchdog, deadlock...).
        # Whatever events made it into the trace are the salvage input.
        if injector is not None:
            fault_summary = injector.summary()
        trace = runtime.trace
        if trace is None:
            report = SalvageReport(fault_summary=fault_summary)
            report.run_error = f"{type(exc).__name__}: {exc}"
            report.watchdog_fired = isinstance(exc, WatchdogTimeout)
            return SalvageOutcome(
                app=name, status="partial", profile=None, salvage=report,
                error=report.run_error, config=config,
                governor_report=_fold_governor(report, runtime),
            )
        profile, report = salvage_profile_from_trace(
            trace, implicit_region, finish_time=runtime.env.now
        )
        report.fault_summary = fault_summary
        report.run_error = f"{type(exc).__name__}: {exc}"
        report.watchdog_fired = isinstance(exc, WatchdogTimeout)
        return SalvageOutcome(
            app=name, status="partial", profile=profile, salvage=report,
            error=report.run_error, config=config,
            governor_report=_fold_governor(report, runtime),
        )

    if injector is not None:
        fault_summary = injector.summary()

    # The run completed.  If the recorded trace is inconsistent (stream
    # faults fired), the *live* profile is fine but trace-derived tooling
    # is not -- rebuild from the repaired trace so profile and trace agree
    # and the damage is accounted for.
    trace = runtime.trace
    violations = collect_trace_violations(trace) if trace is not None else []
    if violations:
        profile, report = salvage_profile_from_trace(
            trace, implicit_region, finish_time=runtime.env.now
        )
        report.fault_summary = fault_summary
        for violation in violations[:20]:
            report.note(f"trace violation: {violation.message}")
        return SalvageOutcome(
            app=name,
            status="partial",
            profile=profile,
            salvage=report,
            duration=result.duration,
            verified=program.verify(result),
            config=config,
            governor_report=_fold_governor(report, runtime),
        )

    profile = result.profile
    if profile is not None and profile.salvage is None and fault_summary:
        profile.salvage = SalvageReport(fault_summary=fault_summary)
    if recorder is not None and profile is not None:
        # Stamp the verification target: repro verify replays the
        # recorded stream and must reproduce exactly this cube.
        from repro.recorder import record_live_profile

        try:
            record_live_profile(record_dir, profile)
        except OSError:
            pass  # recording is best-effort; never fail a healthy run
    return SalvageOutcome(
        app=name,
        status="complete",
        profile=profile,
        salvage=profile.salvage if profile is not None else None,
        duration=result.duration,
        verified=program.verify(result),
        config=config,
        governor_report=_fold_governor(
            profile.salvage if profile is not None else None, runtime
        ),
    )


@dataclass
class CampaignResult:
    """One cell of the mode x seed x app grid."""

    app: str
    mode: str
    seed: int
    status: str
    ok: bool
    summary: str
    error: Optional[str] = None
    #: supervisor outcome class (``ok``/``partial``/``degraded``/``error``/
    #: ``timeout``/``crash``/``oom``); in-process cells derive it from
    #: ``status`` (or the governor's degradation state)
    outcome: str = ""
    #: how many worker attempts this cell took (1 = no retries)
    attempts: int = 1

    def __post_init__(self) -> None:
        if not self.outcome:
            self.outcome = "ok" if self.status == "complete" else self.status


def run_campaign(
    apps: Sequence[str] = ("fib", "nqueens"),
    modes: Sequence[str] = FAULT_MODES,
    seeds: Sequence[int] = (0, 1, 2),
    size: str = "test",
    n_threads: int = 2,
    watchdog_us: float = DEFAULT_WATCHDOG_US,
    *,
    supervised: bool = False,
    jobs: int = 1,
    wall_timeout_s: Optional[float] = None,
    retries: int = 1,
    journal_path: Optional[str] = None,
    resume: bool = False,
) -> List[CampaignResult]:
    """Sweep the fault grid in lenient mode; never raises per-cell.

    ``supervised=True`` runs every cell in an isolated worker subprocess
    via :class:`repro.supervisor.Supervisor`: ``jobs`` workers in
    parallel, per-cell wall-clock timeouts, retry-with-backoff for
    transient failures, and (with ``journal_path``) a crash-safe journal
    that ``resume=True`` replays so completed cells are not re-executed.

    Either way, a ``KeyboardInterrupt`` raises
    :class:`~repro.errors.CampaignInterrupted` carrying the cells that
    finished, instead of discarding them.
    """
    if supervised:
        return _run_campaign_supervised(
            apps, modes, seeds, size, n_threads, watchdog_us,
            jobs=jobs, wall_timeout_s=wall_timeout_s, retries=retries,
            journal_path=journal_path, resume=resume,
        )
    results: List[CampaignResult] = []
    cells = [(a, m, s) for a in apps for m in modes for s in seeds]
    try:
        for app, mode, seed in cells:
            plan = plan_for_mode(mode, seed=seed)
            outcome = run_tolerant(
                app,
                size=size,
                n_threads=n_threads,
                seed=seed,
                plan=plan,
                watchdog_us=watchdog_us,
            )
            summary = (
                outcome.salvage.summary()
                if outcome.salvage is not None
                else "profile complete: no salvage needed"
            )
            results.append(
                CampaignResult(
                    app=app,
                    mode=mode,
                    seed=seed,
                    status=outcome.status,
                    ok=outcome.ok,
                    summary=summary,
                    error=outcome.error,
                    outcome="degraded" if outcome.degraded else "",
                )
            )
    except KeyboardInterrupt:
        raise CampaignInterrupted(
            f"campaign interrupted after {len(results)} of {len(cells)} cells",
            results,
        ) from None
    return results


def _run_campaign_supervised(
    apps, modes, seeds, size, n_threads, watchdog_us, *,
    jobs, wall_timeout_s, retries, journal_path, resume,
) -> List[CampaignResult]:
    from repro.supervisor import Supervisor, fault_grid

    specs = fault_grid(
        apps, modes, seeds,
        size=size, n_threads=n_threads, watchdog_us=watchdog_us,
        wall_timeout_s=wall_timeout_s,
    )
    report = Supervisor(
        specs,
        jobs=jobs,
        timeout_s=wall_timeout_s,
        retries=retries,
        journal_path=journal_path,
        resume=resume,
    ).run()
    by_cell = {spec.cell_id: spec for spec in specs}
    results = []
    for cell in report.results:
        params = by_cell[cell.cell_id].params
        if report.interrupted and cell.outcome in ("interrupted", "pending"):
            continue  # unfinished cells are not campaign results
        results.append(
            CampaignResult(
                app=params["app"],
                mode=params["mode"],
                seed=params["seed"],
                status=cell.status,
                ok=cell.ok,
                summary=cell.summary,
                error=cell.error,
                outcome=cell.outcome,
                attempts=cell.attempts,
            )
        )
    if report.interrupted:
        raise CampaignInterrupted(
            f"campaign interrupted after {len(results)} of {len(specs)} cells",
            results,
        )
    return results


def campaign_table(results: Sequence[CampaignResult]) -> str:
    """Fixed-width text rendering of a campaign grid."""
    lines = [
        f"{'app':<12} {'mode':<18} {'seed':>4} {'att':>3}  {'status':<9} summary",
        "-" * 78,
    ]
    for r in results:
        lines.append(
            f"{r.app:<12} {r.mode:<18} {r.seed:>4} {r.attempts:>3}  "
            f"{r.status:<9} {r.summary}"
        )
    ok = sum(1 for r in results if r.ok)
    lines.append("-" * 78)
    lines.append(f"{ok}/{len(results)} cells degraded gracefully")
    return "\n".join(lines)
