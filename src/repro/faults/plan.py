"""Fault plans: frozen, seeded descriptions of what to break.

A plan is pure data -- rates, magnitudes, and a seed.  Handing the same
plan to two runs of the same program produces byte-identical faults, so
every campaign failure is replayable from its ``(mode, seed)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

#: The named single-fault corruption modes a campaign sweeps over.
FAULT_MODES: Tuple[str, ...] = (
    "task_exception",
    "stuck_task",
    "drop_events",
    "duplicate_events",
    "reorder_events",
    "truncate_stream",
    "clock_skew",
    "pressure",
)


@dataclass(frozen=True)
class FaultPlan:
    """Everything the :class:`~repro.faults.injector.FaultInjector` needs.

    All ``*_rate`` fields are per-decision probabilities in ``[0, 1]``:
    task rates apply once per explicit task instance, stream rates once
    per recorded event.  A default-constructed plan injects nothing.
    """

    seed: int = 0
    # -- task-level faults (perturb the simulated run itself) ----------
    #: probability that an explicit task body raises FaultInjectionError
    task_exception_rate: float = 0.0
    #: probability that an explicit task computes "forever" (watchdog bait)
    stuck_task_rate: float = 0.0
    #: virtual µs a stuck task burns (large, but finite: no wall-clock hang)
    stuck_duration_us: float = 1e9
    #: cap on task-level faults per run (1 keeps campaigns diagnosable)
    max_task_faults: int = 1
    # -- stream-level faults (perturb the recorded event stream) -------
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    clock_skew_rate: float = 0.0
    #: maximum |skew| in virtual µs applied to a skewed event
    clock_skew_us: float = 25.0
    #: record at most this many events program-wide, then drop the rest
    truncate_after: Optional[int] = None
    # -- pressure fault (starve the *measurement*, not the program) ----
    #: arm the resource governor with this cap on live task-instance
    #: trees; drives the degradation ladder instead of killing the run
    pressure_budget: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "task_exception_rate",
            "stuck_task_rate",
            "drop_rate",
            "duplicate_rate",
            "reorder_rate",
            "clock_skew_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.truncate_after is not None and self.truncate_after < 0:
            raise ValueError(f"truncate_after must be >= 0, got {self.truncate_after!r}")
        if self.pressure_budget is not None and self.pressure_budget < 1:
            raise ValueError(
                f"pressure_budget must be >= 1, got {self.pressure_budget!r}"
            )

    # ------------------------------------------------------------------
    @property
    def wants_task_faults(self) -> bool:
        return self.task_exception_rate > 0.0 or self.stuck_task_rate > 0.0

    @property
    def wants_stream_faults(self) -> bool:
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.reorder_rate > 0.0
            or self.clock_skew_rate > 0.0
            or self.truncate_after is not None
        )

    @property
    def wants_pressure(self) -> bool:
        """Memory-pressure fault: armed through the governor, not the
        injector, so it deliberately does not make the plan ``armed``."""
        return self.pressure_budget is not None

    @property
    def armed(self) -> bool:
        return self.wants_task_faults or self.wants_stream_faults

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = []
        if self.task_exception_rate:
            parts.append(f"task_exception={self.task_exception_rate:g}")
        if self.stuck_task_rate:
            parts.append(f"stuck_task={self.stuck_task_rate:g}")
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"duplicate={self.duplicate_rate:g}")
        if self.reorder_rate:
            parts.append(f"reorder={self.reorder_rate:g}")
        if self.clock_skew_rate:
            parts.append(f"clock_skew={self.clock_skew_rate:g}")
        if self.truncate_after is not None:
            parts.append(f"truncate_after={self.truncate_after}")
        if self.pressure_budget is not None:
            parts.append(f"pressure_budget={self.pressure_budget}")
        body = ", ".join(parts) if parts else "no faults"
        return f"FaultPlan(seed={self.seed}: {body})"


def plan_for_mode(mode: str, seed: int = 0, intensity: float = 0.05) -> FaultPlan:
    """Build a single-mode plan for a campaign cell.

    ``intensity`` is the per-event rate for stream modes; task modes use
    a high per-task rate (capped at one fault per run) so the fault
    actually fires on small workloads.
    """
    if mode == "task_exception":
        return FaultPlan(seed=seed, task_exception_rate=0.5)
    if mode == "stuck_task":
        return FaultPlan(seed=seed, stuck_task_rate=0.5)
    if mode == "drop_events":
        return FaultPlan(seed=seed, drop_rate=intensity)
    if mode == "duplicate_events":
        return FaultPlan(seed=seed, duplicate_rate=intensity)
    if mode == "reorder_events":
        return FaultPlan(seed=seed, reorder_rate=intensity)
    if mode == "truncate_stream":
        return FaultPlan(seed=seed, truncate_after=120)
    if mode == "clock_skew":
        return FaultPlan(seed=seed, clock_skew_rate=intensity)
    if mode == "pressure":
        # Below the test-size kernels' unbounded concurrency peak, so the
        # ladder demonstrably engages; the run completes degraded instead
        # of being killed and retried as an oom.
        return FaultPlan(seed=seed, pressure_budget=4)
    raise ValueError(
        f"unknown fault mode {mode!r}; known modes: {', '.join(FAULT_MODES)}"
    )
