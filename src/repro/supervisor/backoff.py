"""Retry pacing: exponential backoff with deterministic jitter.

Transient failures (a crashed or OOM-killed worker, a wall-clock
timeout) are retried after an exponentially growing delay.  The jitter
de-synchronizes retries of many cells without sacrificing the package's
determinism guarantee: it is derived from a seeded RNG keyed by
``(cell_id, attempt)``, so the same grid replays the same schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Delay before retry ``attempt + 1`` after ``attempt`` failed."""

    #: delay after the first failure, in real seconds
    base_s: float = 0.5
    #: multiplier per subsequent failure
    factor: float = 2.0
    #: ceiling on the un-jittered delay
    max_s: float = 30.0
    #: +/- fraction of the delay randomized (0 disables jitter)
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.factor < 1.0 or self.max_s < 0:
            raise ValueError(
                f"invalid backoff policy: base_s={self.base_s!r}, "
                f"factor={self.factor!r}, max_s={self.max_s!r}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter!r}")

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        raw = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        if not self.jitter:
            return raw
        rng = random.Random(f"{key}#{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


#: Snappy policy for test-sized grids and CI smoke runs.
FAST_BACKOFF = BackoffPolicy(base_s=0.05, factor=2.0, max_s=1.0, jitter=0.1)
