"""Crash-safe supervised execution of run grids.

The evaluation is a large sweep -- BOTS kernels x configs x seeds
(Figs. 13-15, Tables I-II), the ``repro faults`` campaign, paper-table
regeneration -- and a single hung kernel, OOM, or Ctrl-C must not lose
the whole grid.  This subpackage is the robustness layer between "run
one cell" and "run thousands of cells unattended":

* :mod:`~repro.supervisor.spec` -- serializable :class:`RunSpec` cells
  and grid builders (:func:`fault_grid`, :func:`call_cell`).
* :mod:`~repro.supervisor.worker` -- the subprocess entry point;
  enforces the *wall-clock* watchdog (``RuntimeConfig.wall_timeout_s``)
  via ``SIGALRM``, which the virtual-time ``watchdog_us`` cannot do for
  a kernel stuck without advancing virtual time.
* :mod:`~repro.supervisor.backoff` -- exponential retry pacing with
  deterministic, seeded jitter.
* :mod:`~repro.supervisor.journal` -- the append-only, fsync'd JSONL
  write-ahead journal that makes campaigns resumable after SIGKILL.
* :mod:`~repro.supervisor.supervisor` -- the orchestration loop:
  parallel workers (``jobs``), deadline enforcement, retry
  classification (transient ``crash``/``timeout``/``oom``/``stuck`` vs
  deterministic ``error``), graceful Ctrl-C drain, ``resume``, plus the
  optional :mod:`repro.fabric` layers: heartbeat liveness, per-class
  circuit breakers, admission control, and campaign deadlines.

Surfaced as ``repro supervise`` on the CLI and as the
``supervised=True`` path of :func:`repro.faults.run_campaign`.
"""

from repro.supervisor.backoff import FAST_BACKOFF, BackoffPolicy
from repro.supervisor.journal import (
    JOURNAL_VERSION,
    RESUMABLE_OUTCOMES,
    RETRYABLE_OUTCOMES,
    TERMINAL_OUTCOMES,
    Journal,
    JournalState,
    load_journal,
)
from repro.supervisor.salvage import SALVAGEABLE_OUTCOMES, attempt_cell_salvage
from repro.supervisor.spec import (
    RunSpec,
    call_cell,
    fault_cell,
    fault_grid,
    load_spec_file,
    spec_from_dict,
)
from repro.supervisor.supervisor import (
    CellResult,
    Supervisor,
    SupervisorReport,
    outcome_table,
    run_supervised,
)
from repro.supervisor.worker import execute_spec, wall_clock_guard

__all__ = [
    "BackoffPolicy",
    "FAST_BACKOFF",
    "Journal",
    "JournalState",
    "load_journal",
    "JOURNAL_VERSION",
    "RESUMABLE_OUTCOMES",
    "RETRYABLE_OUTCOMES",
    "TERMINAL_OUTCOMES",
    "SALVAGEABLE_OUTCOMES",
    "attempt_cell_salvage",
    "RunSpec",
    "call_cell",
    "fault_cell",
    "fault_grid",
    "load_spec_file",
    "spec_from_dict",
    "CellResult",
    "Supervisor",
    "SupervisorReport",
    "outcome_table",
    "run_supervised",
    "execute_spec",
    "wall_clock_guard",
]
