"""The crash-safe campaign journal: append-only, fsync'd JSONL.

The supervisor writes one JSON record per line, flushed and fsync'd
before the action it describes takes effect ("write-ahead"): a
``start`` record before a worker launches, a ``result`` record as soon
as its outcome is known.  Because appends are the only mutation, a
SIGKILL at any byte offset costs at most the final, partial line --
:func:`load_journal` tolerates exactly that and replays the rest, which
is what makes ``--resume`` safe after a crash of the supervisor itself.

Record types::

    {"type":"meta","version":2,"cells":N}
    {"type":"start","cell":ID,"attempt":K}
    {"type":"result","cell":ID,"attempt":K,"outcome":...,"ok":...,
     "status":...,"summary":...,"error":...,"duration_s":...}
    {"type":"interrupt","completed":N}

The ``meta`` record doubles as the schema-version header: replaying a
journal whose declared version is *newer* than this build raises
:class:`~repro.errors.JournalVersionError` up front, so ``--resume``
against a future-format journal fails with one clear message instead
of a ``KeyError`` halfway through records it cannot interpret.  Older
versions load fine (the format only ever gains record types and
outcome values).

Only the supervisor process writes the journal; workers report through
a pipe, so an orphaned worker can never corrupt it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.errors import JournalVersionError

#: Version 2 added the fabric outcomes (``short_circuited``,
#: ``cancelled``, ``stuck``) and made the meta record an enforced
#: schema-version header.
JOURNAL_VERSION = 2

#: Outcomes that settle a cell: re-running cannot improve on them.
#: ``ok``/``partial`` degraded gracefully; ``degraded`` completed under
#: a memory budget (deterministic ladder, so a retry would only degrade
#: again); ``error`` is a deterministic failure that would reproduce;
#: ``short_circuited`` was refused by an open circuit breaker whose
#: class already failed deterministically often enough to prove itself.
TERMINAL_OUTCOMES = frozenset({"ok", "partial", "degraded", "error",
                               "short_circuited"})
#: Transient outcomes worth retrying (and re-running on resume).
#: ``stuck`` -- alive but silent past the heartbeat stall window -- is
#: transient like ``timeout``: the wedge may be a scheduling accident.
RETRYABLE_OUTCOMES = frozenset({"crash", "timeout", "oom", "stuck"})
#: Outcomes that mean "the campaign stopped, not the cell": never
#: retried in-run, re-run by ``--resume``.
RESUMABLE_OUTCOMES = frozenset({"interrupted", "cancelled", "pending"})


class Journal:
    """Append-only writer.  Every record hits the disk before we act."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def record(self, entry: dict) -> None:
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # Convenience constructors for the record types -------------------
    def meta(self, n_cells: int) -> None:
        self.record({"type": "meta", "version": JOURNAL_VERSION, "cells": n_cells})

    def start(self, cell_id: str, attempt: int) -> None:
        self.record({"type": "start", "cell": cell_id, "attempt": attempt})

    def result(self, cell_id: str, attempt: int, payload: dict) -> None:
        entry = {"type": "result", "cell": cell_id, "attempt": attempt}
        entry.update(payload)
        self.record(entry)

    def interrupt(self, completed: int) -> None:
        self.record({"type": "interrupt", "completed": completed})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


@dataclass
class JournalState:
    """What a replayed journal says about each cell."""

    #: cell -> its most recent ``result`` record
    results: Dict[str, dict] = field(default_factory=dict)
    #: cell -> number of ``start`` records (attempts ever launched)
    attempts: Dict[str, int] = field(default_factory=dict)
    #: lines that failed to parse (a crash mid-append leaves at most 1)
    skipped_lines: int = 0
    interrupted: bool = False

    @property
    def completed(self) -> Set[str]:
        """Cells whose latest outcome is terminal -- skipped on resume."""
        return {
            cell
            for cell, record in self.results.items()
            if record.get("outcome") in TERMINAL_OUTCOMES
        }


def load_journal(path: str) -> JournalState:
    """Replay a journal, tolerating a torn final line.

    A partial trailing line is the expected residue of a supervisor
    killed mid-append; it is counted in ``skipped_lines`` and otherwise
    ignored, as is any line that fails to parse (corruption never makes
    resume refuse to run -- the worst case is re-running a cell).  The
    one deliberate refusal is a ``meta`` header declaring a *newer*
    schema version than this build writes: that raises
    :class:`~repro.errors.JournalVersionError` instead of guessing at
    records this code predates.
    """
    state = JournalState()
    try:
        handle = open(path, encoding="utf-8")
    except FileNotFoundError:
        return state
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                state.skipped_lines += 1
                continue
            kind = entry.get("type")
            if kind == "meta":
                version = entry.get("version")
                if not isinstance(version, int) or version > JOURNAL_VERSION:
                    raise JournalVersionError(version, JOURNAL_VERSION)
            elif kind == "start":
                cell = entry.get("cell")
                state.attempts[cell] = max(
                    state.attempts.get(cell, 0), int(entry.get("attempt", 0))
                )
            elif kind == "result":
                cell = entry.get("cell")
                state.results[cell] = entry
            elif kind == "interrupt":
                state.interrupted = True
    return state
