"""The crash-safe run supervisor.

Executes a grid of :class:`~repro.supervisor.spec.RunSpec` cells in
isolated worker subprocesses (``--jobs`` at a time), each under a
wall-clock deadline enforced twice -- ``SIGALRM`` inside the worker,
kill-from-parent as the backstop -- with bounded retry + exponential
backoff for transient outcomes (``crash``/``timeout``/``oom``; a
deterministic ``error`` is never retried), journaling every attempt
write-ahead to an fsync'd JSONL file so that a SIGKILL of any worker
*or of the supervisor itself* loses at most the in-flight cells:
``resume=True`` replays the journal, emits completed cells from it, and
re-runs only the rest.  ``KeyboardInterrupt`` drains workers, flushes
the journal, and returns the partial results instead of losing them.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence

from repro.supervisor.backoff import BackoffPolicy
from repro.supervisor.journal import (
    RETRYABLE_OUTCOMES,
    TERMINAL_OUTCOMES,
    Journal,
    JournalState,
    load_journal,
)
from repro.supervisor.spec import RunSpec, check_unique_cell_ids
from repro.supervisor.worker import worker_main


@dataclass
class CellResult:
    """Final word on one cell, after retries and/or resume."""

    cell_id: str
    #: ok | partial | degraded | error | timeout | crash | oom |
    #: interrupted | pending
    outcome: str
    ok: bool
    status: str
    summary: str
    attempts: int = 1
    error: Optional[str] = None
    duration_s: float = 0.0
    #: True when replayed from the journal instead of re-executed
    cached: bool = False


@dataclass
class SupervisorReport:
    """Everything one supervisor invocation produced."""

    results: List[CellResult] = field(default_factory=list)
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(r.ok for r in self.results)

    def result_for(self, cell_id: str) -> Optional[CellResult]:
        for result in self.results:
            if result.cell_id == cell_id:
                return result
        return None


@dataclass
class _Running:
    spec: RunSpec
    attempt: int  # global attempt number (monotone across resumes)
    round: int  # attempt number within THIS invocation's retry budget
    proc: object
    conn: object
    started: float
    deadline: Optional[float]
    limit: Optional[float]


class Supervisor:
    """Run a spec grid to completion, surviving everything short of the
    journal's filesystem disappearing."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        *,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff: Optional[BackoffPolicy] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        start_method: Optional[str] = None,
    ):
        self.specs = list(specs)
        check_unique_cell_ids(self.specs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s!r}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.journal_path = journal_path
        self.resume = resume
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    def run(self) -> SupervisorReport:
        journal = Journal(self.journal_path) if self.journal_path else None
        state = (
            load_journal(self.journal_path)
            if self.resume and self.journal_path
            else JournalState()
        )
        results: Dict[str, CellResult] = {}
        attempts_seen: Dict[str, int] = dict(state.attempts)
        pending = deque()  # (spec, global_attempt, round)
        delayed: List[tuple] = []  # (due_monotonic, spec, global_attempt, round)
        running: List[_Running] = []
        interrupted = False

        completed = state.completed
        for spec in self.specs:
            if spec.cell_id in completed:
                results[spec.cell_id] = self._cached_result(
                    spec, state.results[spec.cell_id], attempts_seen
                )
            else:
                pending.append((spec, attempts_seen.get(spec.cell_id, 0) + 1, 1))

        if journal is not None:
            journal.meta(len(self.specs))
        try:
            while pending or delayed or running:
                now = time.monotonic()
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    delayed = [entry for entry in delayed if entry[0] > now]
                    for _, spec, attempt, rnd in due:
                        pending.append((spec, attempt, rnd))
                while pending and len(running) < self.jobs:
                    spec, attempt, rnd = pending.popleft()
                    running.append(self._launch(journal, spec, attempt, rnd))
                    attempts_seen[spec.cell_id] = attempt
                if not running:
                    next_due = min(entry[0] for entry in delayed)
                    time.sleep(min(0.05, max(0.0, next_due - time.monotonic())))
                    continue
                self._poll(running, journal, results, delayed, attempts_seen)
        except KeyboardInterrupt:
            interrupted = True
            self._drain(running, journal, results)
        finally:
            if journal is not None:
                journal.close()

        if interrupted:
            for spec in self.specs:
                if spec.cell_id not in results:
                    results[spec.cell_id] = CellResult(
                        cell_id=spec.cell_id,
                        outcome="pending",
                        ok=False,
                        status="pending",
                        summary="not started before the interrupt "
                        "(re-run with --resume)",
                        attempts=attempts_seen.get(spec.cell_id, 0),
                    )
        ordered = [
            results[spec.cell_id] for spec in self.specs if spec.cell_id in results
        ]
        return SupervisorReport(results=ordered, interrupted=interrupted)

    # ------------------------------------------------------------------
    def _cached_result(
        self, spec: RunSpec, record: dict, attempts_seen: Dict[str, int]
    ) -> CellResult:
        return CellResult(
            cell_id=spec.cell_id,
            outcome=record.get("outcome", "ok"),
            ok=bool(record.get("ok", False)),
            status=record.get("status", ""),
            summary=record.get("summary", ""),
            attempts=attempts_seen.get(spec.cell_id, int(record.get("attempt", 1))),
            error=record.get("error"),
            duration_s=float(record.get("duration_s", 0.0)),
            cached=True,
        )

    def _launch(
        self, journal: Optional[Journal], spec: RunSpec, attempt: int, rnd: int
    ) -> _Running:
        limit = spec.wall_timeout_s if spec.wall_timeout_s is not None else self.timeout_s
        if journal is not None:
            journal.start(spec.cell_id, attempt)  # write-ahead
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(send_conn, spec.to_dict(), limit),
            name=f"repro-cell-{spec.cell_id}",
            daemon=True,
        )
        started = time.monotonic()
        proc.start()
        send_conn.close()  # child's end; keeping it open would mask EOF
        # The parent-side deadline is a backstop behind the worker's own
        # SIGALRM, so it gets a grace period on top of the limit.
        deadline = None
        if limit is not None:
            deadline = started + limit + max(0.5, 0.25 * limit)
        return _Running(
            spec=spec,
            attempt=attempt,
            round=rnd,
            proc=proc,
            conn=recv_conn,
            started=started,
            deadline=deadline,
            limit=limit,
        )

    def _poll(
        self,
        running: List[_Running],
        journal: Optional[Journal],
        results: Dict[str, CellResult],
        delayed: List[tuple],
        attempts_seen: Dict[str, int],
    ) -> None:
        now = time.monotonic()
        wait_s = 0.1
        for entry in running:
            if entry.deadline is not None:
                wait_s = min(wait_s, max(0.0, entry.deadline - now))
        handles = [r.conn for r in running] + [r.proc.sentinel for r in running]
        connection_wait(handles, timeout=wait_s)
        now = time.monotonic()

        finished: List[tuple] = []
        for entry in running:
            payload = None
            if entry.conn.poll():
                try:
                    payload = entry.conn.recv()
                except (EOFError, OSError):
                    payload = None
            if payload is not None:
                self._reap(entry)
                finished.append((entry, payload))
            elif not entry.proc.is_alive():
                self._reap(entry)
                finished.append((entry, self._crash_payload(entry)))
            elif entry.deadline is not None and now >= entry.deadline:
                self._kill(entry)
                finished.append(
                    (
                        entry,
                        {
                            "outcome": "timeout",
                            "ok": False,
                            "status": "timeout",
                            "summary": f"worker exceeded its wall-clock limit "
                            f"of {entry.limit:g} s and was killed",
                            "error": "WallClockTimeout: killed by supervisor",
                        },
                    )
                )

        for entry, payload in finished:
            running.remove(entry)
            payload = dict(payload)
            payload.setdefault("outcome", "error")
            payload.setdefault("ok", False)
            payload.setdefault("status", payload["outcome"])
            payload.setdefault("summary", "")
            payload.setdefault("error", None)
            payload["duration_s"] = round(time.monotonic() - entry.started, 6)
            if journal is not None:
                journal.result(entry.spec.cell_id, entry.attempt, payload)
            retryable = payload["outcome"] in RETRYABLE_OUTCOMES
            if retryable and entry.round < self.retries + 1:
                delay = self.backoff.delay(entry.round, key=entry.spec.cell_id)
                delayed.append(
                    (
                        time.monotonic() + delay,
                        entry.spec,
                        entry.attempt + 1,
                        entry.round + 1,
                    )
                )
            else:
                results[entry.spec.cell_id] = CellResult(
                    cell_id=entry.spec.cell_id,
                    outcome=payload["outcome"],
                    ok=bool(payload["ok"]),
                    status=payload["status"],
                    summary=payload["summary"],
                    attempts=entry.attempt,
                    error=payload["error"],
                    duration_s=payload["duration_s"],
                )

    @staticmethod
    def _crash_payload(entry: _Running) -> dict:
        code = entry.proc.exitcode
        if code is not None and code < 0:
            try:
                reason = f"signal {signal.Signals(-code).name}"
            except ValueError:  # pragma: no cover - unknown signal number
                reason = f"signal {-code}"
        else:
            reason = f"exit code {code}"
        return {
            "outcome": "crash",
            "ok": False,
            "status": "crash",
            "summary": f"worker died ({reason}) without reporting a result",
            "error": f"WorkerCrash: {reason}",
        }

    @staticmethod
    def _reap(entry: _Running) -> None:
        entry.proc.join(timeout=5.0)
        if entry.proc.is_alive():  # pragma: no cover - wedged after result
            entry.proc.kill()
            entry.proc.join(timeout=5.0)
        try:
            entry.conn.close()
        except OSError:  # pragma: no cover
            pass

    @staticmethod
    def _kill(entry: _Running) -> None:
        entry.proc.terminate()
        entry.proc.join(timeout=0.5)
        if entry.proc.is_alive():
            entry.proc.kill()
            entry.proc.join(timeout=5.0)
        try:
            entry.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _drain(
        self,
        running: List[_Running],
        journal: Optional[Journal],
        results: Dict[str, CellResult],
    ) -> None:
        """Ctrl-C: stop workers, journal the partial state, keep results."""
        previous = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:  # a second Ctrl-C must not break the cleanup
            previous = signal.signal(signal.SIGINT, signal.SIG_IGN)
        try:
            for entry in running:
                self._kill(entry)
                payload = {
                    "outcome": "interrupted",
                    "ok": False,
                    "status": "interrupted",
                    "summary": "killed by KeyboardInterrupt mid-attempt "
                    "(re-run with --resume)",
                    "error": "KeyboardInterrupt",
                    "duration_s": round(time.monotonic() - entry.started, 6),
                }
                if journal is not None:
                    journal.result(entry.spec.cell_id, entry.attempt, payload)
                results[entry.spec.cell_id] = CellResult(
                    cell_id=entry.spec.cell_id,
                    outcome="interrupted",
                    ok=False,
                    status="interrupted",
                    summary=payload["summary"],
                    attempts=entry.attempt,
                    error="KeyboardInterrupt",
                    duration_s=payload["duration_s"],
                )
            running.clear()
            if journal is not None:
                completed = sum(
                    1 for r in results.values() if r.outcome in TERMINAL_OUTCOMES
                )
                journal.interrupt(completed)
        finally:
            if in_main:
                signal.signal(signal.SIGINT, previous)


def run_supervised(specs: Sequence[RunSpec], **kwargs) -> SupervisorReport:
    """One-shot convenience: build a :class:`Supervisor` and run it."""
    return Supervisor(specs, **kwargs).run()


def outcome_table(report: SupervisorReport) -> str:
    """Fixed-width per-cell outcome table (attempts, salvage status)."""
    lines = [
        f"{'cell':<28} {'outcome':<12} {'att':>3}  summary",
        "-" * 78,
    ]
    for r in report.results:
        cached = " (cached)" if r.cached else ""
        lines.append(
            f"{r.cell_id:<28} {r.outcome:<12} {r.attempts:>3}  {r.summary}{cached}"
        )
    ok = sum(1 for r in report.results if r.ok)
    cached = sum(1 for r in report.results if r.cached)
    retried = sum(1 for r in report.results if not r.cached and r.attempts > 1)
    lines.append("-" * 78)
    lines.append(
        f"{ok}/{len(report.results)} cells ok "
        f"({cached} replayed from journal, {retried} retried)"
    )
    if report.interrupted:
        lines.append(
            "campaign interrupted: completed cells are journaled; "
            "re-run with --resume to finish the grid"
        )
    return "\n".join(lines)
