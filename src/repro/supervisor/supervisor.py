"""The crash-safe run supervisor.

Executes a grid of :class:`~repro.supervisor.spec.RunSpec` cells in
isolated worker subprocesses (``--jobs`` at a time), each under a
wall-clock deadline enforced twice -- ``SIGALRM`` inside the worker,
kill-from-parent as the backstop -- with bounded retry + exponential
backoff for transient outcomes (``crash``/``timeout``/``oom``/``stuck``;
a deterministic ``error`` is never retried), journaling every attempt
write-ahead to an fsync'd JSONL file so that a SIGKILL of any worker
*or of the supervisor itself* loses at most the in-flight cells:
``resume=True`` replays the journal, emits completed cells from it, and
re-runs only the rest.  ``KeyboardInterrupt`` drains workers, flushes
the journal, and returns the partial results instead of losing them.

On top of that crash-safety core sit the fabric layers
(:mod:`repro.fabric`), each optional and inert by default:

* **heartbeats** (``heartbeat_s``): workers pulse liveness records over
  the result pipe; a worker whose beats stop while its process lives is
  classified ``stuck`` (vs ``timeout`` for slow-but-beating) and
  escalated SIGTERM then SIGKILL.
* **circuit breakers** (``breaker=BreakerPolicy(...)``): cells sharing
  a :meth:`~repro.supervisor.spec.RunSpec.class_key` that fail
  ``threshold`` times consecutively are short-circuited -- journaled
  terminal ``short_circuited`` without launching -- until a half-open
  probe cell proves the class healthy again.
* **admission control** (``admission=AdmissionPolicy(...)``): the
  backlog drains through a bounded queue with block/reject/shed
  overload policies and per-tag quotas; rejected or shed cells are
  journaled ``cancelled`` (resumable), not lost.
* **campaign deadline** (``deadline_s``): when the budget expires the
  supervisor stops launching, lets running cells finish, and journals
  everything still queued as ``cancelled`` -- the grid stays
  ``--resume``-able.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Sequence

from repro.fabric.admission import AdmissionController, AdmissionPolicy
from repro.fabric.breaker import BreakerPolicy, CircuitBreaker
from repro.fabric.heartbeat import (
    DEFAULT_STALL_FACTOR,
    LivenessTracker,
    is_heartbeat,
)
from repro.supervisor.backoff import BackoffPolicy
from repro.supervisor.journal import (
    RETRYABLE_OUTCOMES,
    TERMINAL_OUTCOMES,
    Journal,
    JournalState,
    load_journal,
)
from repro.supervisor.spec import RunSpec, check_unique_cell_ids
from repro.supervisor.worker import worker_main


@dataclass
class CellResult:
    """Final word on one cell, after retries and/or resume."""

    cell_id: str
    #: ok | partial | degraded | error | timeout | crash | oom | stuck |
    #: short_circuited | cancelled | interrupted | pending
    outcome: str
    ok: bool
    status: str
    summary: str
    attempts: int = 1
    error: Optional[str] = None
    duration_s: float = 0.0
    #: True when replayed from the journal instead of re-executed
    cached: bool = False


class _SigtermDrain(BaseException):
    """Raised by the supervisor's SIGTERM handler to enter the drain path.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    ``except Exception`` in the launch loop can swallow it: a SIGTERM
    must always reach the drain logic that journals the partial state.
    """


@dataclass
class SupervisorReport:
    """Everything one supervisor invocation produced."""

    results: List[CellResult] = field(default_factory=list)
    interrupted: bool = False
    #: True when the interrupt was a SIGTERM (orchestrator-initiated
    #: drain) rather than a Ctrl-C; callers exit 143 instead of 130
    terminated: bool = False
    #: True when the campaign deadline expired and queued cells were
    #: journaled as ``cancelled``
    deadline_hit: bool = False
    #: per-class circuit-breaker state at the end of the run
    breaker_summary: Dict[str, dict] = field(default_factory=dict)
    #: admission-controller counters (None when admission was off)
    admission_stats: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(r.ok for r in self.results)

    def result_for(self, cell_id: str) -> Optional[CellResult]:
        for result in self.results:
            if result.cell_id == cell_id:
                return result
        return None


@dataclass
class _Running:
    spec: RunSpec
    attempt: int  # global attempt number (monotone across resumes)
    round: int  # attempt number within THIS invocation's retry budget
    proc: object
    conn: object
    started: float
    deadline: Optional[float]
    limit: Optional[float]
    #: this launch is a half-open circuit-breaker probe
    probe: bool = False


class Supervisor:
    """Run a spec grid to completion, surviving everything short of the
    journal's filesystem disappearing."""

    def __init__(
        self,
        specs: Sequence[RunSpec],
        *,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        backoff: Optional[BackoffPolicy] = None,
        journal_path: Optional[str] = None,
        resume: bool = False,
        start_method: Optional[str] = None,
        heartbeat_s: Optional[float] = None,
        stall_factor: float = DEFAULT_STALL_FACTOR,
        deadline_s: Optional[float] = None,
        breaker: Optional[BreakerPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
    ):
        self.specs = list(specs)
        check_unique_cell_ids(self.specs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s!r}")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {heartbeat_s!r}")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {deadline_s!r}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.journal_path = journal_path
        self.resume = resume
        self.heartbeat_s = heartbeat_s
        self.stall_factor = stall_factor
        self.deadline_s = deadline_s
        self.breaker_policy = breaker
        self.admission_policy = admission
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    def run(self) -> SupervisorReport:
        journal = Journal(self.journal_path) if self.journal_path else None
        state = (
            load_journal(self.journal_path)
            if self.resume and self.journal_path
            else JournalState()
        )
        results: Dict[str, CellResult] = {}
        attempts_seen: Dict[str, int] = dict(state.attempts)
        backlog = deque()  # fresh cells awaiting admission
        pending = deque()  # (spec, global_attempt, round): ready to launch
        delayed: List[tuple] = []  # (due_monotonic, spec, global_attempt, round)
        running: List[_Running] = []
        interrupted = False
        terminated = False
        deadline_hit = False

        # SIGTERM parity with Ctrl-C: drain workers, journal the partial
        # table, stay resumable.  An orchestrator (systemd, a container
        # runtime, the campaign gateway) stopping a supervised run must
        # not lose more than the in-flight cells.  Installable only from
        # the main thread; elsewhere the parent-kill path still applies.
        previous_sigterm = None
        sigterm_installed = False
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(_signum, _frame):
                raise _SigtermDrain()

            try:
                previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
                sigterm_installed = True
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass

        breaker = (
            CircuitBreaker(self.breaker_policy) if self.breaker_policy else None
        )
        admission = (
            AdmissionController(self.admission_policy)
            if self.admission_policy
            else None
        )
        liveness = (
            LivenessTracker(self.heartbeat_s, self.stall_factor)
            if self.heartbeat_s
            else None
        )
        deadline_at = (
            time.monotonic() + self.deadline_s if self.deadline_s else None
        )

        completed = state.completed
        for spec in self.specs:
            if spec.cell_id in completed:
                results[spec.cell_id] = self._cached_result(
                    spec, state.results[spec.cell_id], attempts_seen
                )
            else:
                item = (spec, attempts_seen.get(spec.cell_id, 0) + 1, 1)
                (backlog if admission is not None else pending).append(item)

        if journal is not None:
            journal.meta(len(self.specs))
        try:
            while backlog or pending or delayed or running or (
                admission is not None and len(admission)
            ):
                now = time.monotonic()
                if deadline_at is not None and not deadline_hit and now >= deadline_at:
                    deadline_hit = True
                    self._cancel_queued(
                        journal,
                        results,
                        self._drain_queues(backlog, pending, delayed, admission),
                        f"campaign deadline of {self.deadline_s:g} s expired "
                        f"before this cell started (re-run with --resume)",
                    )
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    delayed = [entry for entry in delayed if entry[0] > now]
                    for _, spec, attempt, rnd in due:
                        pending.append((spec, attempt, rnd))
                if admission is not None:
                    self._feed_admission(admission, backlog, journal, results)
                while len(running) < self.jobs:
                    item = self._take_next(pending, admission)
                    if item is None:
                        break
                    spec, attempt, rnd = item
                    decision = (
                        breaker.admit(spec.class_key()) if breaker else "run"
                    )
                    if decision == "short_circuit":
                        self._finalize_short_circuit(
                            journal, results, breaker, spec, attempt
                        )
                        continue
                    entry = self._launch(
                        journal, spec, attempt, rnd, probe=decision == "probe"
                    )
                    running.append(entry)
                    attempts_seen[spec.cell_id] = attempt
                    if liveness is not None:
                        liveness.started(spec.cell_id, now=entry.started)
                if not running:
                    if delayed:
                        next_due = min(entry[0] for entry in delayed)
                        time.sleep(min(0.05, max(0.0, next_due - time.monotonic())))
                    elif backlog or (admission is not None and len(admission)):
                        time.sleep(0.005)  # admission hysteresis re-check
                    continue
                self._poll(
                    running,
                    journal,
                    results,
                    delayed,
                    attempts_seen,
                    liveness=liveness,
                    breaker=breaker,
                    no_retries=deadline_hit,
                )
        except (KeyboardInterrupt, _SigtermDrain) as exc:
            interrupted = True
            terminated = isinstance(exc, _SigtermDrain)
            self._drain(running, journal, results, terminated=terminated)
        finally:
            if sigterm_installed:
                signal.signal(signal.SIGTERM, previous_sigterm)
            if journal is not None:
                journal.close()

        if interrupted:
            for spec in self.specs:
                if spec.cell_id not in results:
                    results[spec.cell_id] = CellResult(
                        cell_id=spec.cell_id,
                        outcome="pending",
                        ok=False,
                        status="pending",
                        summary="not started before the interrupt "
                        "(re-run with --resume)",
                        attempts=attempts_seen.get(spec.cell_id, 0),
                    )
        ordered = [
            results[spec.cell_id] for spec in self.specs if spec.cell_id in results
        ]
        return SupervisorReport(
            results=ordered,
            interrupted=interrupted,
            terminated=terminated,
            deadline_hit=deadline_hit,
            breaker_summary=breaker.summary() if breaker is not None else {},
            admission_stats=(
                admission.stats.to_dict() if admission is not None else None
            ),
        )

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _take_next(pending: deque, admission: Optional[AdmissionController]):
        """Next launchable item: retries first, then the admitted queue."""
        if pending:
            return pending.popleft()
        if admission is not None:
            popped = admission.pop()
            if popped is not None:
                return popped[0]
        return None

    def _feed_admission(
        self,
        admission: AdmissionController,
        backlog: deque,
        journal: Optional[Journal],
        results: Dict[str, CellResult],
    ) -> None:
        """Drain the backlog through the admission controller.

        ``deferred`` items stay in the backlog (the block policy applied
        to a batch grid is pure pacing -- they are re-offered once the
        queue drains past the low watermark); ``rejected`` and shed
        items become resumable ``cancelled`` results, not lost cells.
        """
        leftover = deque()
        while backlog:
            item = backlog.popleft()
            verdict, shed = admission.offer(item, tag=item[0].admission_tag)
            if verdict == "deferred":
                leftover.append(item)
            elif verdict == "rejected":
                self._cancel_queued(
                    journal,
                    results,
                    [item],
                    "rejected by admission control: pending queue at its "
                    "high watermark (re-run with --resume)",
                )
            for victim, _tag in shed:
                self._cancel_queued(
                    journal,
                    results,
                    [victim],
                    "shed by admission control to admit fresher work "
                    "(re-run with --resume)",
                )
        backlog.extend(leftover)

    @staticmethod
    def _drain_queues(
        backlog: deque,
        pending: deque,
        delayed: List[tuple],
        admission: Optional[AdmissionController],
    ) -> List[tuple]:
        """Empty every not-yet-running queue; returns the drained items."""
        items = list(backlog) + list(pending)
        backlog.clear()
        pending.clear()
        items.extend((spec, attempt, rnd) for _, spec, attempt, rnd in delayed)
        delayed.clear()
        if admission is not None:
            while True:
                popped = admission.pop()
                if popped is None:
                    break
                items.append(popped[0])
        return items

    def _cancel_queued(
        self,
        journal: Optional[Journal],
        results: Dict[str, CellResult],
        items: Sequence[tuple],
        reason: str,
    ) -> None:
        """Journal queued-but-never-launched cells as ``cancelled``.

        ``cancelled`` is resumable, not terminal: a later ``--resume``
        re-runs exactly these cells and replays everything else.
        """
        for spec, attempt, _rnd in items:
            payload = {
                "outcome": "cancelled",
                "ok": False,
                "status": "cancelled",
                "summary": reason,
                "error": None,
                "duration_s": 0.0,
            }
            if journal is not None:
                journal.result(spec.cell_id, attempt, payload)
            results[spec.cell_id] = CellResult(
                cell_id=spec.cell_id,
                outcome="cancelled",
                ok=False,
                status="cancelled",
                summary=reason,
                attempts=attempt - 1,  # this attempt never launched
                error=None,
                duration_s=0.0,
            )

    def _finalize_short_circuit(
        self,
        journal: Optional[Journal],
        results: Dict[str, CellResult],
        breaker: CircuitBreaker,
        spec: RunSpec,
        attempt: int,
    ) -> None:
        """Refuse a cell of an open class without launching a worker."""
        state = breaker.state_of(spec.class_key())
        reason = (
            f"short-circuited: class {spec.class_key()} is open after "
            f"{state.consecutive_failures} consecutive "
            f"{state.last_failure or 'failure'}(s); no worker launched"
        )
        payload = {
            "outcome": "short_circuited",
            "ok": False,
            "status": "short_circuited",
            "summary": reason,
            "error": f"ShortCircuited: {state.last_failure or 'failure'}",
            "duration_s": 0.0,
        }
        if journal is not None:
            journal.result(spec.cell_id, attempt, payload)
        results[spec.cell_id] = CellResult(
            cell_id=spec.cell_id,
            outcome="short_circuited",
            ok=False,
            status="short_circuited",
            summary=reason,
            attempts=attempt - 1,  # refused before launching
            error=payload["error"],
            duration_s=0.0,
        )

    # ------------------------------------------------------------------
    def _cached_result(
        self, spec: RunSpec, record: dict, attempts_seen: Dict[str, int]
    ) -> CellResult:
        return CellResult(
            cell_id=spec.cell_id,
            outcome=record.get("outcome", "ok"),
            ok=bool(record.get("ok", False)),
            status=record.get("status", ""),
            summary=record.get("summary", ""),
            attempts=attempts_seen.get(spec.cell_id, int(record.get("attempt", 1))),
            error=record.get("error"),
            duration_s=float(record.get("duration_s", 0.0)),
            cached=True,
        )

    def _launch(
        self,
        journal: Optional[Journal],
        spec: RunSpec,
        attempt: int,
        rnd: int,
        probe: bool = False,
    ) -> _Running:
        limit = spec.wall_timeout_s if spec.wall_timeout_s is not None else self.timeout_s
        if journal is not None:
            journal.start(spec.cell_id, attempt)  # write-ahead
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=worker_main,
            args=(send_conn, spec.to_dict(), limit, self.heartbeat_s),
            name=f"repro-cell-{spec.cell_id}",
            daemon=True,
        )
        started = time.monotonic()
        proc.start()
        send_conn.close()  # child's end; keeping it open would mask EOF
        # The parent-side deadline is a backstop behind the worker's own
        # SIGALRM, so it gets a grace period on top of the limit.
        deadline = None
        if limit is not None:
            deadline = started + limit + max(0.5, 0.25 * limit)
        return _Running(
            spec=spec,
            attempt=attempt,
            round=rnd,
            proc=proc,
            conn=recv_conn,
            started=started,
            deadline=deadline,
            limit=limit,
            probe=probe,
        )

    def _poll(
        self,
        running: List[_Running],
        journal: Optional[Journal],
        results: Dict[str, CellResult],
        delayed: List[tuple],
        attempts_seen: Dict[str, int],
        liveness: Optional[LivenessTracker] = None,
        breaker: Optional[CircuitBreaker] = None,
        no_retries: bool = False,
    ) -> None:
        now = time.monotonic()
        wait_s = 0.1
        for entry in running:
            if entry.deadline is not None:
                wait_s = min(wait_s, max(0.0, entry.deadline - now))
        handles = [r.conn for r in running] + [r.proc.sentinel for r in running]
        connection_wait(handles, timeout=wait_s)
        now = time.monotonic()

        finished: List[tuple] = []
        for entry in running:
            payload = self._receive(entry, liveness, now)
            if payload is not None:
                self._reap(entry)
                finished.append((entry, payload))
            elif not entry.proc.is_alive():
                self._reap(entry)
                finished.append((entry, self._crash_payload(entry)))
            elif (
                liveness is not None
                and liveness.stalled(entry.spec.cell_id, now)
            ):
                silent = liveness.silent_for(entry.spec.cell_id, now)
                self._kill(entry)  # SIGTERM first, SIGKILL if ignored
                finished.append(
                    (
                        entry,
                        {
                            "outcome": "stuck",
                            "ok": False,
                            "status": "stuck",
                            "summary": f"worker alive but silent for "
                            f"{silent:.1f} s (heartbeat interval "
                            f"{self.heartbeat_s:g} s); escalated SIGTERM "
                            f"then SIGKILL",
                            "error": "WorkerStuck: heartbeats stopped",
                        },
                    )
                )
            elif entry.deadline is not None and now >= entry.deadline:
                self._kill(entry)
                finished.append(
                    (
                        entry,
                        {
                            "outcome": "timeout",
                            "ok": False,
                            "status": "timeout",
                            "summary": f"worker exceeded its wall-clock limit "
                            f"of {entry.limit:g} s and was killed",
                            "error": "WallClockTimeout: killed by supervisor",
                        },
                    )
                )

        for entry, payload in finished:
            running.remove(entry)
            if liveness is not None:
                liveness.forget(entry.spec.cell_id)
            payload = dict(payload)
            payload.pop("type", None)  # worker tags results when beating
            payload.setdefault("outcome", "error")
            payload.setdefault("ok", False)
            payload.setdefault("status", payload["outcome"])
            payload.setdefault("summary", "")
            payload.setdefault("error", None)
            payload["duration_s"] = round(time.monotonic() - entry.started, 6)
            retryable = payload["outcome"] in RETRYABLE_OUTCOMES
            will_retry = (
                retryable and not no_retries and entry.round < self.retries + 1
            )
            if not will_retry:
                # Terminal failure of a worker that died without handing
                # back a profile: salvage what its recording preserved.
                from repro.supervisor.salvage import (
                    SALVAGEABLE_OUTCOMES,
                    attempt_cell_salvage,
                )

                if payload["outcome"] in SALVAGEABLE_OUTCOMES:
                    salvage = attempt_cell_salvage(
                        entry.spec, payload["outcome"]
                    )
                    if salvage is not None:
                        payload["salvage"] = salvage
                        if "error" not in salvage:
                            payload["summary"] = (
                                f"{payload['summary']}; salvaged "
                                f"{salvage['records']} recorded events "
                                f"from {salvage['source']}"
                            ).lstrip("; ")
            if journal is not None:
                journal.result(entry.spec.cell_id, entry.attempt, payload)
            if breaker is not None:
                breaker.record(
                    entry.spec.class_key(), payload["outcome"], probe=entry.probe
                )
            if will_retry:
                delay = self.backoff.delay(entry.round, key=entry.spec.cell_id)
                delayed.append(
                    (
                        time.monotonic() + delay,
                        entry.spec,
                        entry.attempt + 1,
                        entry.round + 1,
                    )
                )
            else:
                results[entry.spec.cell_id] = CellResult(
                    cell_id=entry.spec.cell_id,
                    outcome=payload["outcome"],
                    ok=bool(payload["ok"]),
                    status=payload["status"],
                    summary=payload["summary"],
                    attempts=entry.attempt,
                    error=payload["error"],
                    duration_s=payload["duration_s"],
                )

    @staticmethod
    def _receive(
        entry: _Running, liveness: Optional[LivenessTracker], now: float
    ) -> Optional[dict]:
        """Drain the pipe: fold heartbeats into liveness, return a result.

        Heartbeats and the final payload share one pipe, so several
        records may be queued by the time we poll; everything that is
        not a heartbeat is the worker's result.
        """
        try:
            while entry.conn.poll():
                message = entry.conn.recv()
                if is_heartbeat(message):
                    if liveness is not None:
                        liveness.beat(entry.spec.cell_id, now=now)
                    continue
                return message
        except (EOFError, OSError):
            pass
        return None

    @staticmethod
    def _crash_payload(entry: _Running) -> dict:
        code = entry.proc.exitcode
        if code is not None and code < 0:
            try:
                reason = f"signal {signal.Signals(-code).name}"
            except ValueError:  # pragma: no cover - unknown signal number
                reason = f"signal {-code}"
        else:
            reason = f"exit code {code}"
        return {
            "outcome": "crash",
            "ok": False,
            "status": "crash",
            "summary": f"worker died ({reason}) without reporting a result",
            "error": f"WorkerCrash: {reason}",
        }

    @staticmethod
    def _reap(entry: _Running) -> None:
        entry.proc.join(timeout=5.0)
        if entry.proc.is_alive():  # pragma: no cover - wedged after result
            entry.proc.kill()
            entry.proc.join(timeout=5.0)
        try:
            entry.conn.close()
        except OSError:  # pragma: no cover
            pass

    @staticmethod
    def _kill(entry: _Running) -> None:
        entry.proc.terminate()
        entry.proc.join(timeout=0.5)
        if entry.proc.is_alive():
            entry.proc.kill()
            entry.proc.join(timeout=5.0)
        try:
            entry.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _drain(
        self,
        running: List[_Running],
        journal: Optional[Journal],
        results: Dict[str, CellResult],
        terminated: bool = False,
    ) -> None:
        """Ctrl-C/SIGTERM: stop workers, journal partial state, keep results."""
        previous = None
        previous_term = None
        in_main = threading.current_thread() is threading.main_thread()
        if in_main:  # a second Ctrl-C/SIGTERM must not break the cleanup
            previous = signal.signal(signal.SIGINT, signal.SIG_IGN)
            try:
                previous_term = signal.signal(signal.SIGTERM, signal.SIG_IGN)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                previous_term = None
        cause = "SIGTERM" if terminated else "KeyboardInterrupt"
        try:
            for entry in running:
                self._kill(entry)
                payload = {
                    "outcome": "interrupted",
                    "ok": False,
                    "status": "interrupted",
                    "summary": f"killed by {cause} mid-attempt "
                    "(re-run with --resume)",
                    "error": cause,
                    "duration_s": round(time.monotonic() - entry.started, 6),
                }
                if journal is not None:
                    journal.result(entry.spec.cell_id, entry.attempt, payload)
                results[entry.spec.cell_id] = CellResult(
                    cell_id=entry.spec.cell_id,
                    outcome="interrupted",
                    ok=False,
                    status="interrupted",
                    summary=payload["summary"],
                    attempts=entry.attempt,
                    error=cause,
                    duration_s=payload["duration_s"],
                )
            running.clear()
            if journal is not None:
                completed = sum(
                    1 for r in results.values() if r.outcome in TERMINAL_OUTCOMES
                )
                journal.interrupt(completed)
        finally:
            if in_main:
                signal.signal(signal.SIGINT, previous)
                if previous_term is not None:
                    signal.signal(signal.SIGTERM, previous_term)


def run_supervised(specs: Sequence[RunSpec], **kwargs) -> SupervisorReport:
    """One-shot convenience: build a :class:`Supervisor` and run it."""
    return Supervisor(specs, **kwargs).run()


def outcome_table(report: SupervisorReport) -> str:
    """Fixed-width per-cell outcome table (attempts, salvage status)."""
    lines = [
        f"{'cell':<28} {'outcome':<12} {'att':>3}  summary",
        "-" * 78,
    ]
    for r in report.results:
        cached = " (cached)" if r.cached else ""
        lines.append(
            f"{r.cell_id:<28} {r.outcome:<12} {r.attempts:>3}  {r.summary}{cached}"
        )
    ok = sum(1 for r in report.results if r.ok)
    cached = sum(1 for r in report.results if r.cached)
    retried = sum(1 for r in report.results if not r.cached and r.attempts > 1)
    lines.append("-" * 78)
    lines.append(
        f"{ok}/{len(report.results)} cells ok "
        f"({cached} replayed from journal, {retried} retried)"
    )
    fabric_counts = [
        f"{count} {name}"
        for name in ("short_circuited", "cancelled", "stuck")
        if (count := sum(1 for r in report.results if r.outcome == name))
    ]
    if fabric_counts:
        lines.append("fabric: " + ", ".join(fabric_counts))
    open_classes = {
        key: state
        for key, state in report.breaker_summary.items()
        if state.get("state") in ("open", "half_open")
    }
    if open_classes:
        lines.append(
            "breaker: "
            + "; ".join(
                f"{key} {state['state']} "
                f"(last failure: {state.get('last_failure') or '?'})"
                for key, state in sorted(open_classes.items())
            )
        )
    if report.deadline_hit:
        lines.append(
            "campaign deadline hit: queued cells journaled as cancelled; "
            "re-run with --resume to finish the grid"
        )
    if report.interrupted:
        cause = "terminated (SIGTERM)" if report.terminated else "interrupted"
        lines.append(
            f"campaign {cause}: completed cells are journaled; "
            "re-run with --resume to finish the grid"
        )
    return "\n".join(lines)
