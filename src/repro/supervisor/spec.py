"""Run specs: serializable descriptions of one supervised grid cell.

A :class:`RunSpec` is pure data -- kind, parameters, per-cell limits --
so it can cross a process boundary (the worker), a file boundary (the
``--spec-file`` grid format) and a crash boundary (the journal keys
cells by ``cell_id``).  Two kinds cover every grid the evaluation runs:

* ``'fault'`` -- one cell of the fault campaign: run a BOTS kernel in
  lenient mode with a seeded :class:`~repro.faults.plan.FaultPlan`
  armed (``mode='none'`` runs the kernel healthy, which also covers
  plain benchmark repetitions).
* ``'call'`` -- any importable ``module:function`` with JSON kwargs;
  used for paper-table regeneration cells, self-test stubs
  (:mod:`repro.supervisor.stubs`) and ad-hoc grids.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

SPEC_KINDS = ("fault", "call")

#: Parameters excluded from :meth:`RunSpec.class_key`: the seed is what
#: varies between repetitions of one configuration (the archive's
#: ``config_fingerprint`` convention), and the archive/record
#: directories and archive tags are deployment plumbing, not behavior.
_CLASS_KEY_EXCLUDED = ("seed", "archive_dir", "archive_tags", "record_dir")


@dataclass(frozen=True)
class RunSpec:
    """One cell of a supervised grid.

    ``cell_id`` is the stable key the journal uses to match results
    across supervisor restarts -- it must be unique within a grid and
    identical between the original run and a ``--resume``.
    """

    kind: str
    cell_id: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: wall-clock limit for this cell in real seconds (None = use the
    #: supervisor's default); enforced in the worker via SIGALRM and by
    #: a parent-side kill.
    wall_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ValueError(
                f"spec kind must be one of {SPEC_KINDS}, got {self.kind!r}"
            )
        if not self.cell_id:
            raise ValueError("cell_id must be a non-empty string")
        if self.wall_timeout_s is not None and self.wall_timeout_s <= 0:
            raise ValueError(
                f"wall_timeout_s must be positive, got {self.wall_timeout_s!r}"
            )

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "cell_id": self.cell_id, "params": dict(self.params)}
        if self.wall_timeout_s is not None:
            data["wall_timeout_s"] = self.wall_timeout_s
        return data

    # ------------------------------------------------------------------
    # Fabric keys
    # ------------------------------------------------------------------
    @property
    def admission_tag(self) -> str:
        """Coarse grouping tag for per-tag admission quotas.

        The kernel name for fault cells, the call target otherwise --
        the granularity at which "one hot workload must not starve the
        queue" is a meaningful statement.
        """
        if self.kind == "fault":
            return str(self.params.get("app", "fault"))
        return str(self.params.get("target", "call"))

    def class_key(self) -> str:
        """The circuit-breaker class: (kernel, seed-excluded fingerprint).

        Cells of one class are repetitions of the same configuration
        under different seeds, mirroring the archive's
        :func:`~repro.archive.meta.config_fingerprint` grouping; a
        class that crashes for one seed is overwhelmingly likely to
        crash for the rest, which is precisely the bet the breaker
        makes when it short-circuits them.
        """
        payload = {
            key: value
            for key, value in self.params.items()
            if key not in _CLASS_KEY_EXCLUDED
        }
        canonical = json.dumps(
            {"kind": self.kind, "params": payload},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
        return f"{self.admission_tag}|{digest[:12]}"


def spec_from_dict(data: dict) -> RunSpec:
    return RunSpec(
        kind=data["kind"],
        cell_id=data["cell_id"],
        params=dict(data.get("params") or {}),
        wall_timeout_s=data.get("wall_timeout_s"),
    )


# ----------------------------------------------------------------------
# Grid builders
# ----------------------------------------------------------------------
def fault_cell(
    app: str,
    mode: str,
    seed: int,
    *,
    size: str = "test",
    n_threads: int = 2,
    watchdog_us: Optional[float] = None,
    wall_timeout_s: Optional[float] = None,
    substrates: Optional[Sequence[str]] = None,
    archive_dir: Optional[str] = None,
    archive_tags: Optional[Sequence[str]] = None,
    record_dir: Optional[str] = None,
    cell_id: Optional[str] = None,
) -> RunSpec:
    """One fault-campaign cell (``mode='none'`` = healthy run).

    ``substrates`` optionally names extra measurement substrates for the
    worker to attach (registry names only -- the spec must stay JSON).
    ``archive_dir`` makes the worker archive the cell's (possibly
    salvaged) profile into the content-addressed store at that path;
    ``archive_tags`` adds extra tags to that archive record (the
    campaign gateway stamps ``campaign:<id>`` here so a campaign's runs
    are queryable by tag).  ``record_dir`` arms durable event recording
    (:mod:`repro.recorder`) in the worker; on crash/timeout/oom/stuck
    the supervisor salvages a partial profile from that directory, and
    retries warm-start from it.
    """
    params: Dict[str, Any] = {
        "app": app,
        "mode": mode,
        "seed": seed,
        "size": size,
        "n_threads": n_threads,
        "watchdog_us": watchdog_us,
    }
    if substrates:
        params["substrates"] = list(substrates)
    if archive_dir:
        params["archive_dir"] = os.fspath(archive_dir)
    if archive_tags:
        params["archive_tags"] = [str(tag) for tag in archive_tags]
    if record_dir:
        params["record_dir"] = os.fspath(record_dir)
    return RunSpec(
        kind="fault",
        cell_id=cell_id or f"{app}|{mode}|s{seed}",
        params=params,
        wall_timeout_s=wall_timeout_s,
    )


def fault_grid(
    apps: Sequence[str],
    modes: Sequence[str],
    seeds: Sequence[int],
    *,
    size: str = "test",
    n_threads: int = 2,
    watchdog_us: Optional[float] = None,
    wall_timeout_s: Optional[float] = None,
    substrates: Optional[Sequence[str]] = None,
    archive_dir: Optional[str] = None,
    record_root: Optional[str] = None,
) -> List[RunSpec]:
    """The campaign grid, app-major like ``run_campaign`` sweeps it.

    ``record_root`` gives every cell its own recording directory
    ``<record_root>/<app>.<mode>.s<seed>`` (cells must never share a
    stream; the layout matches ``cell_id`` for findability).
    """
    return [
        fault_cell(
            app,
            mode,
            seed,
            size=size,
            n_threads=n_threads,
            watchdog_us=watchdog_us,
            wall_timeout_s=wall_timeout_s,
            substrates=substrates,
            archive_dir=archive_dir,
            record_dir=(
                os.path.join(record_root, f"{app}.{mode}.s{seed}")
                if record_root
                else None
            ),
        )
        for app in apps
        for mode in modes
        for seed in seeds
    ]


def call_cell(
    target: str,
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    cell_id: Optional[str] = None,
    wall_timeout_s: Optional[float] = None,
) -> RunSpec:
    """A ``'pkg.module:function'`` cell with JSON-able kwargs."""
    if ":" not in target:
        raise ValueError(
            f"call target must look like 'pkg.module:function', got {target!r}"
        )
    return RunSpec(
        kind="call",
        cell_id=cell_id or target,
        params={"target": target, "kwargs": dict(kwargs or {})},
        wall_timeout_s=wall_timeout_s,
    )


def check_unique_cell_ids(specs: Sequence[RunSpec]) -> None:
    seen: Dict[str, int] = {}
    for spec in specs:
        seen[spec.cell_id] = seen.get(spec.cell_id, 0) + 1
    duplicates = sorted(cell for cell, count in seen.items() if count > 1)
    if duplicates:
        raise ValueError(f"duplicate cell_id(s) in grid: {', '.join(duplicates)}")


def load_spec_file(path: str) -> List[RunSpec]:
    """Load a grid from a JSON list of spec dicts, or JSONL (one/line)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"spec file {path!r} is empty")
    if stripped.startswith("["):
        entries = json.loads(text)
    else:
        entries = [json.loads(line) for line in text.splitlines() if line.strip()]
    specs = [spec_from_dict(entry) for entry in entries]
    check_unique_cell_ids(specs)
    return specs
