"""The supervised worker: run one :class:`RunSpec` in a child process.

The worker is the isolation boundary.  It enforces the *wall-clock*
watchdog (``RuntimeConfig.wall_timeout_s`` / ``RunSpec.wall_timeout_s``)
with ``SIGALRM``, which the in-process runtime cannot do -- a kernel
busy-looping in host Python never advances virtual time, so the
virtual-time ``watchdog_us`` never fires, and only a signal (or the
parent killing the process) gets control back.  Every failure is folded
into a small JSON-able payload with an ``outcome``:

====================  =============================================
outcome               meaning
====================  =============================================
``ok``                cell completed, healthy
``partial``           cell completed degraded (salvaged profile)
``degraded``          cell completed under memory pressure (governor
                      ladder engaged; deterministic, never retried)
``error``             deterministic failure -- never retried
``timeout``           wall-clock limit hit, heartbeats still flowing
                      (slow, not dead; retried)
``oom``               ``MemoryError`` (retried)
``crash``             the process died; classified by the *parent*
``stuck``             alive but heartbeats stopped; classified by the
                      *parent*, escalated SIGTERM then SIGKILL
                      (retried)
``short_circuited``   never launched: an open circuit breaker refused
                      the cell's class (terminal; parent-side)
``cancelled``         never launched: the campaign deadline expired
                      (parent-side; re-run with ``--resume``)
====================  =============================================

Heartbeats: when the parent asks for them (``heartbeat_s``), a daemon
thread sends a tiny ``{"type": "heartbeat"}`` record over the result
pipe every interval.  The SIGALRM watchdog above can be defeated by
native or signal-masked code; heartbeats cannot be *faked* by such
code, only stopped -- which is exactly the signal the parent needs to
tell a wedged worker from a slow one.

``degraded`` is deliberately distinct from ``oom``: an out-of-memory
*kill* is transient (another attempt may fit), while a governor-degraded
run is the deterministic product of its memory budget -- retrying it
would only reproduce the same ladder walk, so the partial-but-honest
profile is kept and no retry is consumed.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Any, Dict

from repro.errors import ReproError, WallClockTimeout
from repro.supervisor.spec import RunSpec, spec_from_dict


@contextmanager
def wall_clock_guard(seconds):
    """Raise :class:`WallClockTimeout` after ``seconds`` of real time.

    A no-op when ``seconds`` is None/0, when ``SIGALRM`` does not exist
    (Windows), or off the main thread (signals cannot be delivered
    there); the parent-side kill remains the backstop in those cases.
    """
    usable = (
        seconds
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _fire(_signum, _frame):
        raise WallClockTimeout(
            f"wall-clock limit of {seconds:g} s exceeded (virtual-time "
            f"watchdog cannot catch a kernel stuck without advancing "
            f"virtual µs)"
        )

    previous = signal.signal(signal.SIGALRM, _fire)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


# ----------------------------------------------------------------------
# Spec dispatch
# ----------------------------------------------------------------------
def _run_fault_cell(params: Dict[str, Any]) -> dict:
    from repro.faults.campaign import DEFAULT_WATCHDOG_US, run_tolerant
    from repro.faults.plan import plan_for_mode

    mode = params.get("mode", "none")
    plan = None if mode in (None, "none") else plan_for_mode(mode, seed=params["seed"])
    watchdog_us = params.get("watchdog_us")
    outcome = run_tolerant(
        params["app"],
        size=params.get("size", "test"),
        n_threads=params.get("n_threads", 2),
        seed=params.get("seed", 0),
        plan=plan,
        watchdog_us=DEFAULT_WATCHDOG_US if watchdog_us is None else watchdog_us,
        substrates=params.get("substrates"),
        record_dir=params.get("record_dir"),
        checkpoint_every=params.get("checkpoint_every"),
    )
    summary = (
        outcome.salvage.summary()
        if outcome.salvage is not None
        else "profile complete: no salvage needed"
    )
    if outcome.degraded:
        kind = "degraded"
    elif outcome.status == "complete":
        kind = "ok"
    else:
        kind = "partial"
    payload = {
        "outcome": kind,
        "ok": outcome.ok,
        "status": outcome.status,
        "summary": summary,
        "error": outcome.error,
    }
    archive_dir = params.get("archive_dir")
    if archive_dir and outcome.profile is not None:
        payload["archive"] = _archive_outcome(archive_dir, outcome, params)
    return payload


def _archive_outcome(archive_dir: str, outcome, params: Dict[str, Any]) -> dict:
    """Archive a fault cell's profile; never fails the cell itself.

    The store's index writes are lock-serialized, so parallel workers
    (``--jobs``) archiving simultaneously is safe.  An archive failure
    is reported in the payload but does not change the cell outcome --
    losing a profile copy must not look like losing the run.
    """
    from repro.archive import ArchiveStore, meta_for_outcome

    mode = params.get("mode", "none")
    tags = (f"mode:{mode}",) if mode not in (None, "none") else ()
    tags += tuple(params.get("archive_tags") or ())
    try:
        record = ArchiveStore(archive_dir).put(
            outcome.profile,
            meta_for_outcome(
                outcome,
                size=params.get("size", "test"),
                variant=params.get("variant", "optimized"),
                seed=params.get("seed", 0),
                tags=tags,
                source="supervisor",
            ),
        )
    except Exception as exc:  # pragma: no cover - disk-full etc.
        return {"error": f"{type(exc).__name__}: {exc}"}
    return {
        "run_id": record.run_id,
        "sha256": record.sha256,
        "deduplicated": record.deduplicated,
    }


def _run_call_cell(params: Dict[str, Any]) -> dict:
    import importlib

    target = params["target"]
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"call target must look like 'pkg.module:function', got {target!r}"
        )
    fn = getattr(importlib.import_module(module_name), attr)
    value = fn(**params.get("kwargs", {}))
    payload = {
        "outcome": "ok",
        "ok": True,
        "status": "complete",
        "summary": f"{target} returned",
        "error": None,
    }
    if isinstance(value, dict):
        payload.update(value)
    return payload


_DISPATCH = {"fault": _run_fault_cell, "call": _run_call_cell}


def execute_spec(spec: RunSpec, wall_timeout_s=None) -> dict:
    """Run one spec to a result payload; never raises (except Ctrl-C).

    ``wall_timeout_s`` is the effective limit (the spec's own, or the
    supervisor default the parent passed down).
    """
    try:
        with wall_clock_guard(wall_timeout_s):
            return _DISPATCH[spec.kind](spec.params)
    except WallClockTimeout as exc:
        return {
            "outcome": "timeout",
            "ok": False,
            "status": "timeout",
            "summary": str(exc),
            "error": f"WallClockTimeout: {exc}",
        }
    except MemoryError as exc:
        return {
            "outcome": "oom",
            "ok": False,
            "status": "oom",
            "summary": "worker ran out of memory",
            "error": f"MemoryError: {exc}",
        }
    except KeyboardInterrupt:
        raise
    except (ReproError, Exception) as exc:  # deterministic: not retried
        return {
            "outcome": "error",
            "ok": False,
            "status": "error",
            "summary": f"{type(exc).__name__}: {exc}",
            "error": f"{type(exc).__name__}: {exc}",
        }


def _start_heartbeats(conn, send_lock, interval_s):
    """Start the heartbeat daemon thread; returns its stop event.

    The thread shares the result pipe with the main thread, so every
    send -- beats here, the final payload in :func:`worker_main` --
    holds ``send_lock``; ``Connection.send`` is not atomic across
    threads and an interleaved pickle would tear the stream.
    """
    from repro.fabric.heartbeat import heartbeat_message

    stop = threading.Event()

    def _pulse() -> None:
        seq = 0
        while not stop.wait(interval_s):
            seq += 1
            try:
                with send_lock:
                    if stop.is_set():  # result already sent; pipe is done
                        return
                    conn.send(heartbeat_message(seq))
            except (BrokenPipeError, OSError):  # parent died; nothing to tell
                return

    thread = threading.Thread(target=_pulse, name="repro-heartbeat", daemon=True)
    thread.start()
    return stop


def worker_main(conn, spec_dict: dict, wall_timeout_s=None, heartbeat_s=None) -> None:
    """Subprocess entry point: run the spec, send the payload, exit.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    process group) reaches only the supervisor, which then drains its
    workers deliberately via SIGTERM and journals the partial state.

    When ``heartbeat_s`` is set, a daemon thread pulses liveness records
    over the pipe while the spec runs; the final result is sent under
    the same lock, tagged ``{"type": "result", ...}`` so the parent can
    split the streams.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        # A forked worker inherits the supervisor's SIGTERM drain
        # handler; restore the default so the parent's drain TERM kills
        # the worker cleanly instead of raising the parent's sentinel.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    send_lock = threading.Lock()
    stop = _start_heartbeats(conn, send_lock, heartbeat_s) if heartbeat_s else None
    payload = execute_spec(spec_from_dict(spec_dict), wall_timeout_s)
    try:
        with send_lock:
            if stop is not None:
                stop.set()
                payload = dict(payload, type="result")
            conn.send(payload)
        conn.close()
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
