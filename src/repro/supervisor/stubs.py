"""Deliberately misbehaving cells for supervisor self-tests.

The fault-injection framework (:mod:`repro.faults`) breaks *simulated*
runs; these stubs break the *host process* -- the failure modes only a
process-isolated supervisor can contain.  They are ``call``-kind spec
targets (``repro.supervisor.stubs:<name>``) used by the test suite and
the CI kill-and-resume smoke job; none of them is imported by
production code paths.
"""

from __future__ import annotations

import os
import signal
import time


def ok_cell(value: int = 0) -> dict:
    """Completes immediately."""
    return {"summary": f"ok (value={value})"}


def sleep_cell(wall_s: float = 0.2) -> dict:
    """Completes after ``wall_s`` real seconds (resume-test pacing)."""
    time.sleep(wall_s)
    return {"summary": f"slept {wall_s:g} s"}


def busy_cell() -> dict:  # pragma: no cover - killed by the watchdog
    """A kernel stuck in host Python: burns CPU, never advances virtual
    time, so only the wall-clock watchdog can stop it."""
    while True:
        pass


def crash_cell(sig: int = signal.SIGKILL) -> dict:  # pragma: no cover
    """Dies by signal without reporting -- the parent classifies it."""
    os.kill(os.getpid(), sig)
    time.sleep(60)  # never reached; belt for non-fatal signals
    return {"summary": "unreachable"}


def error_cell(message: str = "deterministic failure") -> dict:
    """Raises the same exception every attempt (must NOT be retried)."""
    raise ValueError(message)


def oom_cell() -> dict:
    """Simulates an allocation failure (retryable ``oom`` outcome)."""
    raise MemoryError("simulated allocation failure")


def stalled_cell(grace_s: float = 60.0) -> dict:  # pragma: no cover
    """Alive but silent: SIGSTOPs itself.

    A stopped process defeats every cooperative watchdog -- SIGALRM is
    queued but never delivered, heartbeat threads freeze with the rest
    of the process -- yet ``is_alive()`` stays True.  Only the parent's
    heartbeat-stall detection can classify this as ``stuck``, and only
    SIGKILL (which needs no handler to run) can clear it.
    """
    os.kill(os.getpid(), signal.SIGSTOP)
    time.sleep(grace_s)  # reached only if something SIGCONTs us
    return {"summary": "resumed from SIGSTOP"}


def crash_while_missing(marker: str) -> dict:
    """Crashes until ``marker`` exists -- a whole *class* gone bad.

    Unlike :func:`flaky_cell` (one cell, transient), every cell calling
    this with the same marker crashes until the file appears: the shape
    a circuit breaker opens on, and -- once a test creates the marker --
    the shape a half-open probe re-closes on.
    """
    if os.path.exists(marker):
        return {"summary": "class recovered"}
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60)  # pragma: no cover - never reached
    return {"summary": "unreachable"}  # pragma: no cover


def crash_until_attempts(scratch: str, need: int = 3) -> dict:
    """Crashes until ``need`` attempts have been burned on the class.

    Every attempt drops a unique file into ``scratch`` before
    SIGKILLing itself; once the directory holds ``need`` corpses the
    class "recovers".  Lets a test script the exact launch count at
    which a half-open probe will find the class healthy again.
    """
    import tempfile

    os.makedirs(scratch, exist_ok=True)
    if len(os.listdir(scratch)) >= need:
        return {"summary": "class recovered"}
    fd, _path = tempfile.mkstemp(dir=scratch)
    os.close(fd)
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60)  # pragma: no cover - never reached
    return {"summary": "unreachable"}  # pragma: no cover


def flaky_cell(marker: str) -> dict:
    """Crashes on the first attempt, succeeds on the next.

    ``marker`` is a scratch-file path: its absence means "first
    attempt", in which case the cell leaves the marker and SIGKILLs
    itself -- exactly the transient-failure shape retry-with-backoff
    exists for.
    """
    if os.path.exists(marker):
        return {"summary": "recovered on retry"}
    with open(marker, "w", encoding="utf-8") as handle:
        handle.write(str(os.getpid()))
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(60)  # pragma: no cover - never reached
    return {"summary": "unreachable"}  # pragma: no cover
