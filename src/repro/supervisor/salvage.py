"""Parent-side salvage: turn a dead cell's recording into a profile.

When a supervised cell fails *terminally* (no retry budget left) with an
outcome that killed the worker before it could report a profile --
``crash``, ``timeout``, ``oom``, ``stuck`` -- the worker's in-memory
state is gone, but its recording directory is not.  The supervisor calls
:func:`attempt_cell_salvage` from ``_poll``: recover the sealed chunk
prefix (truncating the torn tail), leniently replay it (or fall back to
the last checkpoint's cube partial), and archive the result as a
``partial`` + ``salvaged``-tagged run so the campaign never ends
empty-handed.

Salvage is strictly best-effort: every failure path returns a
description instead of raising, because a salvage bug must never take
down the supervisor that is busy finishing everyone else's cells.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: Outcomes where the worker died without reporting a profile -- the
#: only cases where the recording knows more than the result payload.
SALVAGEABLE_OUTCOMES = ("crash", "timeout", "oom", "stuck")


def _spec_value(params: Dict[str, Any], key: str, default: Any = None) -> Any:
    """Look up ``key`` in the params, or inside a call cell's kwargs."""
    value = params.get(key)
    if value is not None:
        return value
    kwargs = params.get("kwargs")
    if isinstance(kwargs, dict):
        value = kwargs.get(key)
        if value is not None:
            return value
    return default


def attempt_cell_salvage(spec, outcome: str) -> Optional[dict]:
    """Salvage ``spec``'s recording into an archived partial profile.

    Returns a JSON-able description of what was recovered (folded into
    the cell's journal payload and summary), or ``None`` when the spec
    has no recording directory / nothing recoverable.  Never raises.
    """
    params = spec.params
    record_dir = _spec_value(params, "record_dir")
    if not record_dir or not os.path.isdir(record_dir):
        return None
    try:
        from repro.recorder.salvage import salvage_recording

        result = salvage_recording(record_dir)
    except Exception as exc:  # pragma: no cover - defensive
        return {"error": f"{type(exc).__name__}: {exc}"}
    if result is None:
        return {"error": "no recoverable recording state"}
    info = result.describe()
    info["record_dir"] = record_dir
    archive_dir = _spec_value(params, "archive_dir")
    if archive_dir:
        info.update(
            _archive_salvaged(archive_dir, result, spec, outcome)
        )
    return info


def _archive_salvaged(archive_dir: str, result, spec, outcome: str) -> dict:
    """Archive the salvaged profile with partial/salvaged provenance tags.

    The profile itself is left exactly as the replay produced it (a pure
    function of the recorded bytes) so ``repro verify --against`` the
    archived run can re-derive it byte-identically; the failure context
    lives in the run metadata instead.
    """
    try:
        from repro.archive.meta import RunMeta
        from repro.archive.store import ArchiveStore

        params = spec.params
        mode = _spec_value(params, "mode")
        meta = RunMeta(
            kernel=str(_spec_value(params, "app") or spec.cell_id),
            size=str(_spec_value(params, "size") or "test"),
            variant=str(_spec_value(params, "variant") or "optimized"),
            n_threads=int(_spec_value(params, "n_threads") or 0),
            seed=int(_spec_value(params, "seed", 0)),
            config_hash="",
            wall_time_us=None,
            verified=None,
            tags=(
                "partial",
                "salvaged",
                f"outcome:{outcome}",
                f"source:{result.source}",
            )
            + ((f"mode:{mode}",) if mode not in (None, "none") else ())
            + tuple(_spec_value(params, "archive_tags") or ()),
            source="salvage",
            extra={
                "cell_id": spec.cell_id,
                "records": result.records,
                "chunks": result.chunks,
                "generation": result.generation,
            },
        )
        record = ArchiveStore(archive_dir).put(result.profile, meta)
    except Exception as exc:
        return {"archive_error": f"{type(exc).__name__}: {exc}"}
    return {
        "run_id": record.run_id,
        "sha256": record.sha256,
        "deduplicated": record.deduplicated,
    }


__all__ = ["SALVAGEABLE_OUTCOMES", "attempt_cell_salvage"]
