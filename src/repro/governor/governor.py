"""Per-run resource governor: watermark ladder over measurement memory.

The paper's memory evaluation (Section V-B, Table II) shows the profiler's
footprint is bounded only by the maximum number of *concurrently active*
task instances -- a quantity the profiled program controls, not the
profiler.  The governor closes that hole: it tracks live instance trees,
node-pool volume, and event-buffer depth against a
:class:`~repro.governor.budget.MemoryBudget` and walks a deterministic
degradation ladder as pressure rises:

========  =================  ==============================================
 level     name               action
========  =================  ==============================================
 L0        normal             full per-instance profiling
 L1        eager-release      completed instance trees merged immediately;
                              node pools stop retaining freed nodes
 L2        aggregates-only    new instances drop per-instance parameter
                              splits; pool free lists trimmed
 L3        stub-only          new tasks get creation accounting only
                              (single stub node, no instance tree)
 L4        stop               controlled stop; salvageable profile flushed
========  =================  ==============================================

The ladder ratchets: the level never decreases during a run, so a profile
is characterised by the *worst* level it reached and every transition is
recorded as a :class:`PressureIncident`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryPressureStop
from repro.governor.budget import MemoryBudget

#: Ladder levels.
L0_NORMAL = 0
L1_EAGER_RELEASE = 1
L2_AGGREGATES_ONLY = 2
L3_STUB_ONLY = 3
L4_STOP = 4

LEVEL_NAMES = {
    L0_NORMAL: "normal",
    L1_EAGER_RELEASE: "eager-release",
    L2_AGGREGATES_ONLY: "aggregates-only",
    L3_STUB_ONLY: "stub-only",
    L4_STOP: "stop",
}

#: One-line description of what entering each level changes.
LEVEL_ACTIONS = {
    L1_EAGER_RELEASE: "stop retaining freed pool nodes",
    L2_AGGREGATES_ONLY: "drop per-instance parameter splits; trim pool free lists",
    L3_STUB_ONLY: "stub-node-only accounting for new tasks",
    L4_STOP: "controlled stop; flush salvageable profile",
}


@dataclass(frozen=True)
class PressureIncident:
    """One ladder transition: the governor entered ``level`` at ``time_us``.

    ``trigger`` names the binding metric (``live_instances``,
    ``pool_nodes``, or ``event_buffer``); ``value``/``limit``/``ratio``
    record where it stood against its cap; ``tasks_affected`` is how many
    tasks had been created when the transition fired (everything created
    afterwards runs under the new level).
    """

    level: int
    trigger: str
    value: int
    limit: int
    ratio: float
    time_us: float
    tasks_affected: int
    action: str

    def to_dict(self) -> dict:
        return {
            "level": self.level,
            "name": LEVEL_NAMES.get(self.level, str(self.level)),
            "trigger": self.trigger,
            "value": self.value,
            "limit": self.limit,
            "ratio": self.ratio,
            "time_us": self.time_us,
            "tasks_affected": self.tasks_affected,
            "action": self.action,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PressureIncident":
        return cls(
            level=data["level"],
            trigger=data["trigger"],
            value=data["value"],
            limit=data["limit"],
            ratio=data["ratio"],
            time_us=data["time_us"],
            tasks_affected=data["tasks_affected"],
            action=data["action"],
        )

    def describe(self) -> str:
        name = LEVEL_NAMES.get(self.level, str(self.level))
        return (
            f"t={self.time_us:.2f}us L{self.level}({name}): "
            f"{self.trigger}={self.value}/{self.limit} "
            f"({self.ratio:.0%}) -> {self.action}"
        )


class ResourceGovernor:
    """Tracks measurement-memory pressure and drives the degradation ladder.

    The runtime consults the governor at task-creation scheduling points
    (:meth:`on_task_created`); the task profiler reports instance-tree
    lifecycle (:meth:`note_instance_begun` / :meth:`note_instance_completed`)
    and registers ladder actions (:meth:`on_level`).  Metrics the governor
    cannot count itself -- pool volume, event-buffer depth -- are attached
    as gauges (:meth:`attach_gauge`) and polled at each check.
    """

    def __init__(self, budget: MemoryBudget) -> None:
        self.budget = budget
        #: current ladder level; ratchets upward only
        self.level: int = L0_NORMAL
        #: every transition, in order
        self.incidents: List[PressureIncident] = []
        #: live full instance trees (stub instances tracked separately:
        #: their footprint is one node, which the pool gauge sees)
        self.live_instances: int = 0
        self.peak_live: int = 0
        #: live stub-only instances
        self.stub_instances: int = 0
        #: tasks admitted at creation scheduling points
        self.created_tasks: int = 0
        #: tasks created at level >= L3 (creation counted, no tree)
        self.stubbed_tasks: int = 0
        self._gauges: Dict[str, Callable[[], int]] = {}
        self._actions: Dict[int, List[Callable[[], None]]] = {}

    # ------------------------------------------------------------------
    def attach_gauge(self, name: str, fn: Callable[[], int]) -> None:
        """Register a callable polled for metric ``name`` at each check."""
        self._gauges[name] = fn

    def on_level(self, level: int, callback: Callable[[], None]) -> None:
        """Register a ladder action fired once when ``level`` is entered."""
        self._actions.setdefault(level, []).append(callback)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, int]:
        """Current value of every metric a cap exists for."""
        out: Dict[str, int] = {}
        caps = self.budget.caps()
        if "live_instances" in caps:
            out["live_instances"] = self.live_instances
        for name in ("pool_nodes", "event_buffer"):
            if name in caps:
                gauge = self._gauges.get(name)
                out[name] = int(gauge()) if gauge is not None else 0
        return out

    def pressure(self) -> Tuple[float, str, int, int]:
        """(ratio, trigger metric, value, cap) for the most-loaded metric."""
        worst = (0.0, "live_instances", 0, 0)
        caps = self.budget.caps()
        for name, value in self.metrics().items():
            cap = caps[name]
            ratio = value / cap
            if ratio > worst[0]:
                worst = (ratio, name, value, cap)
        return worst

    def _target_level(self, ratio: float) -> int:
        b = self.budget
        if b.on_pressure == "stop":
            return L4_STOP if ratio >= b.hard_fraction else L0_NORMAL
        if ratio >= b.stop_fraction:
            return L4_STOP
        if ratio >= 1.0:
            return L3_STUB_ONLY
        if ratio >= b.hard_fraction:
            return L2_AGGREGATES_ONLY
        if ratio >= b.soft_fraction:
            return L1_EAGER_RELEASE
        return L0_NORMAL

    # ------------------------------------------------------------------
    def check(self, now: float) -> int:
        """Re-evaluate pressure, walking the ladder one rung at a time.

        Every rung between the current level and the target emits its own
        :class:`PressureIncident` and fires its registered actions, so the
        report always shows the complete ladder walk even when pressure
        jumps several watermarks between two checks.  Raises
        :class:`~repro.errors.MemoryPressureStop` on entering L4.
        """
        if not self.budget.armed:
            return self.level
        ratio, trigger, value, cap = self.pressure()
        target = self._target_level(ratio)
        while target > self.level:
            entered = self.level + 1
            self.level = entered
            incident = PressureIncident(
                level=entered,
                trigger=trigger,
                value=value,
                limit=cap,
                ratio=ratio,
                time_us=now,
                tasks_affected=self.created_tasks,
                action=LEVEL_ACTIONS.get(entered, ""),
            )
            self.incidents.append(incident)
            for action in self._actions.get(entered, ()):
                action()
            if entered >= L4_STOP:
                raise MemoryPressureStop(
                    f"memory budget exhausted: {trigger}={value} "
                    f"vs cap {cap} ({ratio:.0%}); "
                    f"{len(self.incidents)} pressure incident(s), "
                    f"profile salvaged at degradation level L4"
                )
        return self.level

    # -- runtime hooks --------------------------------------------------
    def on_task_created(self, now: float) -> int:
        """Admission check at a task-creation scheduling point."""
        self.created_tasks += 1
        level = self.check(now)
        if level >= L3_STUB_ONLY:
            self.stubbed_tasks += 1
        return level

    # -- profiler hooks -------------------------------------------------
    def note_instance_begun(self, now: float, stub: bool = False) -> None:
        if stub:
            self.stub_instances += 1
        else:
            self.live_instances += 1
            if self.live_instances > self.peak_live:
                self.peak_live = self.live_instances
        self.check(now)

    def note_instance_completed(self, stub: bool = False) -> None:
        # Salvage quarantine may drop an end event; never go negative.
        if stub:
            if self.stub_instances > 0:
                self.stub_instances -= 1
        elif self.live_instances > 0:
            self.live_instances -= 1

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True once fidelity is reduced (aggregates-only or worse)."""
        return self.level >= L2_AGGREGATES_ONLY

    def report(self) -> dict:
        ratio, trigger, value, cap = self.pressure()
        return {
            "budget": self.budget.to_dict(),
            "level": self.level,
            "level_name": LEVEL_NAMES.get(self.level, str(self.level)),
            "degraded": self.degraded,
            "pressure": {
                "ratio": ratio,
                "trigger": trigger,
                "value": value,
                "limit": cap,
            },
            "created_tasks": self.created_tasks,
            "stubbed_tasks": self.stubbed_tasks,
            "peak_live_instances": self.peak_live,
            "incidents": [i.to_dict() for i in self.incidents],
        }
