"""Resource governor: bounded measurement memory via a degradation ladder.

See :mod:`repro.governor.governor` for the ladder semantics and
:mod:`repro.governor.budget` for the budget/watermark configuration.
Arm it with ``RuntimeConfig(memory_budget=MemoryBudget(...))`` or
``repro run --memory-budget N``.
"""

from repro.governor.budget import MemoryBudget, PRESSURE_POLICIES
from repro.governor.governor import (
    L0_NORMAL,
    L1_EAGER_RELEASE,
    L2_AGGREGATES_ONLY,
    L3_STUB_ONLY,
    L4_STOP,
    LEVEL_ACTIONS,
    LEVEL_NAMES,
    PressureIncident,
    ResourceGovernor,
)

__all__ = [
    "MemoryBudget",
    "PRESSURE_POLICIES",
    "PressureIncident",
    "ResourceGovernor",
    "LEVEL_NAMES",
    "LEVEL_ACTIONS",
    "L0_NORMAL",
    "L1_EAGER_RELEASE",
    "L2_AGGREGATES_ONLY",
    "L3_STUB_ONLY",
    "L4_STOP",
]
