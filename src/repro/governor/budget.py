"""Memory-budget description for the resource governor.

A :class:`MemoryBudget` is pure configuration: absolute caps on the three
measurement-memory metrics the paper's Section V-B identifies (live
task-instance trees, node-pool volume, event-buffer depth) plus the
watermark fractions that position the degradation ladder's rungs inside
those caps.  The :class:`~repro.governor.governor.ResourceGovernor` does
the actual tracking; the budget never changes during a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


#: What to do when pressure crosses the hard watermark.
PRESSURE_POLICIES = ("degrade", "stop")


@dataclass(frozen=True)
class MemoryBudget:
    """Caps and watermarks for one run's measurement memory.

    Attributes
    ----------
    max_live_instances:
        Cap on concurrently-live task-instance trees summed over threads
        (the quantity ``ConcurrencyTracker`` measures per thread and
        Table II reports the maximum of).  ``None`` = unlimited.
    max_pool_nodes:
        Cap on total node-pool volume (live + free) summed over threads.
    max_events:
        Cap on buffered trace events summed over per-thread streams
        (only meaningful when a tracing substrate is attached).
    soft_fraction / hard_fraction:
        Watermarks as fractions of the binding cap: crossing ``soft``
        enters ladder level L1, crossing ``hard`` enters L2; reaching
        the cap itself (ratio 1.0) enters L3.  ``stop_fraction`` (>= 1)
        is where L4 -- controlled stop -- fires in ``degrade`` mode;
        L3's stub-only accounting normally keeps pressure from ever
        getting there.
    on_pressure:
        ``"degrade"`` walks the full ladder; ``"stop"`` skips it and
        raises :class:`~repro.errors.MemoryPressureStop` as soon as the
        hard watermark is crossed (for runs where degraded numbers are
        worse than no numbers).
    l2_max_free:
        Free-list size each per-thread node pool is trimmed to when the
        ladder reaches L2 (and caps further pooling from then on).
    """

    max_live_instances: Optional[int] = None
    max_pool_nodes: Optional[int] = None
    max_events: Optional[int] = None
    soft_fraction: float = 0.5
    hard_fraction: float = 0.8
    stop_fraction: float = 2.0
    on_pressure: str = "degrade"
    l2_max_free: int = 0

    def __post_init__(self) -> None:
        for name in ("max_live_instances", "max_pool_nodes", "max_events"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {value!r}")
        if not (0.0 < self.soft_fraction <= self.hard_fraction <= 1.0):
            raise ValueError(
                "need 0 < soft_fraction <= hard_fraction <= 1, got "
                f"soft={self.soft_fraction!r} hard={self.hard_fraction!r}"
            )
        if self.stop_fraction < 1.0:
            raise ValueError(
                f"stop_fraction must be >= 1, got {self.stop_fraction!r}"
            )
        if self.on_pressure not in PRESSURE_POLICIES:
            raise ValueError(
                f"on_pressure must be one of {PRESSURE_POLICIES}, "
                f"got {self.on_pressure!r}"
            )
        if self.l2_max_free < 0:
            raise ValueError(f"l2_max_free must be >= 0, got {self.l2_max_free!r}")

    @property
    def armed(self) -> bool:
        """True when at least one cap is set (a budget with no caps is inert)."""
        return (
            self.max_live_instances is not None
            or self.max_pool_nodes is not None
            or self.max_events is not None
        )

    # ------------------------------------------------------------------
    def caps(self) -> dict:
        """Metric name -> absolute cap, for every cap that is set."""
        out = {}
        if self.max_live_instances is not None:
            out["live_instances"] = self.max_live_instances
        if self.max_pool_nodes is not None:
            out["pool_nodes"] = self.max_pool_nodes
        if self.max_events is not None:
            out["event_buffer"] = self.max_events
        return out

    def to_dict(self) -> dict:
        return {
            "max_live_instances": self.max_live_instances,
            "max_pool_nodes": self.max_pool_nodes,
            "max_events": self.max_events,
            "soft_fraction": self.soft_fraction,
            "hard_fraction": self.hard_fraction,
            "stop_fraction": self.stop_fraction,
            "on_pressure": self.on_pressure,
            "l2_max_free": self.l2_max_free,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MemoryBudget":
        return cls(**data)

    def describe(self) -> str:
        caps = self.caps()
        if not caps:
            return "memory budget: no caps (inert)"
        parts = [f"{name}<={cap}" for name, cap in caps.items()]
        parts.append(
            f"watermarks soft={self.soft_fraction:g} hard={self.hard_fraction:g} "
            f"stop={self.stop_fraction:g}"
        )
        parts.append(f"on_pressure={self.on_pressure}")
        return "memory budget: " + ", ".join(parts)
