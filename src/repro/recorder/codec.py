"""Compact binary codec for the recorded measurement-event stream.

The recorder spills every POMP2 callback the substrate manager dispatches
-- enters, exits, task lifecycle, metrics, phase brackets -- as small
binary records: unsigned LEB128 varints for ids and counts, zigzag
varints for (possibly negative) task-instance ids, and raw little-endian
doubles for virtual timestamps, so times survive encode/decode
bit-exactly (replay must reproduce the live profile *byte*-identically).

Region handles are interned on the wire exactly like
:class:`~repro.events.regions.RegionRegistry` interns them in memory: the
encoder emits one ``REGION_DEF`` record the first time a region is
referenced, and every later reference is a single varint.  The decoder
rebuilds its own registry from the defs, so a recorded stream is
self-contained -- replay needs nothing but the bytes.

Records are plain tuples (``(kind, ...)``) rather than event classes:
the hot path appends one tuple per event and all encoding happens in
batches when a chunk is sealed (:mod:`repro.recorder.chunks`).
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

from repro.errors import RecordingError
from repro.events.regions import Region, RegionRegistry, RegionType

#: Wire kinds (one byte each).
KIND_REGION_DEF = 0x01
KIND_INIT = 0x02
KIND_ENTER = 0x10
KIND_EXIT = 0x11
KIND_TASK_BEGIN = 0x12
KIND_TASK_END = 0x13
KIND_TASK_SWITCH = 0x14
KIND_METRIC = 0x17
KIND_PHASE_BEGIN = 0x18
KIND_PHASE_END = 0x19
KIND_FIN = 0x7F

_DOUBLE = struct.Struct("<d")


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def encode_varint(value: int, out: bytearray) -> None:
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError(f"varint value must be >= 0, got {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def decode_varint(data: bytes, offset: int) -> Tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise RecordingError("truncated varint in record payload")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise RecordingError("varint longer than 64 bits")


def zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def _encode_signed(value: int, out: bytearray) -> None:
    encode_varint(zigzag(value), out)


def _decode_signed(data: bytes, offset: int) -> Tuple[int, int]:
    value, offset = decode_varint(data, offset)
    return unzigzag(value), offset


def _encode_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    encode_varint(len(raw), out)
    out += raw


def _decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    length, offset = decode_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise RecordingError("truncated string in record payload")
    return data[offset:end].decode("utf-8"), end


def _encode_time(time: float, out: bytearray) -> None:
    out += _DOUBLE.pack(time)


def _decode_time(data: bytes, offset: int) -> Tuple[float, int]:
    end = offset + 8
    if end > len(data):
        raise RecordingError("truncated timestamp in record payload")
    return _DOUBLE.unpack_from(data, offset)[0], end


def _encode_json(value, out: bytearray) -> None:
    _encode_str(json.dumps(value, sort_keys=True, separators=(",", ":")), out)


def _decode_json(data: bytes, offset: int):
    text, offset = _decode_str(data, offset)
    try:
        return json.loads(text), offset
    except ValueError as exc:
        raise RecordingError(f"malformed JSON payload in record: {exc}") from exc


def _encode_parameter(parameter: Optional[tuple], out: bytearray) -> None:
    if parameter is None:
        out.append(0)
    else:
        out.append(1)
        _encode_json(list(parameter), out)


def _decode_parameter(data: bytes, offset: int) -> Tuple[Optional[tuple], int]:
    if offset >= len(data):
        raise RecordingError("truncated parameter flag in record payload")
    flag = data[offset]
    offset += 1
    if flag == 0:
        return None, offset
    value, offset = _decode_json(data, offset)
    if not isinstance(value, list):
        raise RecordingError(f"parameter payload is not a list: {value!r}")
    return tuple(value), offset


# ----------------------------------------------------------------------
# Record stream encoder
# ----------------------------------------------------------------------
class RecordEncoder:
    """Stateful encoder: emits each region's def once, keyed by its
    live registry handle.

    The wire region id *is* ``region.handle`` -- no private renumbering.
    That makes the registry the one shared intern table end to end: a
    decoder pins replayed regions to these same handles, so recorded
    and live runs (including the columnar batch path, whose packed
    codes carry handles) agree on every region id.

    Region defs are emitted into the same payload that first references
    them, so any prefix of *sealed* chunks is self-describing -- the
    property torn-tail recovery relies on.
    """

    def __init__(self) -> None:
        self._defined = set()

    def _region_ref(self, region: Region, out: bytearray) -> int:
        rid = region.handle
        if rid not in self._defined:
            self._defined.add(rid)
            out.append(KIND_REGION_DEF)
            encode_varint(rid, out)
            _encode_str(region.name, out)
            _encode_str(region.region_type.value, out)
            flags = (1 if region.file is not None else 0) | (
                2 if region.line is not None else 0
            )
            out.append(flags)
            if region.file is not None:
                _encode_str(region.file, out)
            if region.line is not None:
                encode_varint(region.line, out)
        return rid

    def encode(self, records) -> bytes:
        """Encode a batch of record tuples into one chunk payload.

        The five task/region kinds inline their common case -- ids that
        fit one varint byte, no parameter -- because at ~5k records per
        run the per-field helper calls would cost more than the I/O.
        """
        out = bytearray()
        append = out.append
        pack_time = _DOUBLE.pack
        defined = self._defined
        for record in records:
            kind = record[0]
            if kind == "enter":
                _, thread_id, time, region, parameter = record
                rid = region.handle
                if rid not in defined:
                    self._region_ref(region, out)
                append(KIND_ENTER)
                if thread_id < 0x80:
                    append(thread_id)
                else:
                    encode_varint(thread_id, out)
                out += pack_time(time)
                if rid < 0x80:
                    append(rid)
                else:
                    encode_varint(rid, out)
                if parameter is None:
                    append(0)
                else:
                    _encode_parameter(parameter, out)
            elif kind == "exit":
                _, thread_id, time, region = record
                rid = region.handle
                if rid not in defined:
                    self._region_ref(region, out)
                append(KIND_EXIT)
                if thread_id < 0x80:
                    append(thread_id)
                else:
                    encode_varint(thread_id, out)
                out += pack_time(time)
                if rid < 0x80:
                    append(rid)
                else:
                    encode_varint(rid, out)
            elif kind == "task_begin":
                _, thread_id, time, region, instance, parameter = record
                rid = region.handle
                if rid not in defined:
                    self._region_ref(region, out)
                append(KIND_TASK_BEGIN)
                if thread_id < 0x80:
                    append(thread_id)
                else:
                    encode_varint(thread_id, out)
                out += pack_time(time)
                if rid < 0x80:
                    append(rid)
                else:
                    encode_varint(rid, out)
                zz = (instance << 1) if instance >= 0 else ((-instance << 1) - 1)
                if zz < 0x80:
                    append(zz)
                else:
                    encode_varint(zz, out)
                if parameter is None:
                    append(0)
                else:
                    _encode_parameter(parameter, out)
            elif kind == "task_end":
                _, thread_id, time, region, instance = record
                rid = region.handle
                if rid not in defined:
                    self._region_ref(region, out)
                append(KIND_TASK_END)
                if thread_id < 0x80:
                    append(thread_id)
                else:
                    encode_varint(thread_id, out)
                out += pack_time(time)
                if rid < 0x80:
                    append(rid)
                else:
                    encode_varint(rid, out)
                zz = (instance << 1) if instance >= 0 else ((-instance << 1) - 1)
                if zz < 0x80:
                    append(zz)
                else:
                    encode_varint(zz, out)
            elif kind == "task_switch":
                _, thread_id, time, instance = record
                append(KIND_TASK_SWITCH)
                if thread_id < 0x80:
                    append(thread_id)
                else:
                    encode_varint(thread_id, out)
                out += pack_time(time)
                zz = (instance << 1) if instance >= 0 else ((-instance << 1) - 1)
                if zz < 0x80:
                    append(zz)
                else:
                    encode_varint(zz, out)
            elif kind == "metric":
                _, thread_id, time, counters = record
                out.append(KIND_METRIC)
                encode_varint(thread_id, out)
                _encode_time(time, out)
                _encode_json(dict(counters), out)
            elif kind == "phase_begin":
                out.append(KIND_PHASE_BEGIN)
                _encode_str(record[1], out)
            elif kind == "phase_end":
                out.append(KIND_PHASE_END)
                _encode_str(record[1], out)
            elif kind == "init":
                _, n_threads, start_time, region, depth = record
                rid = self._region_ref(region, out)
                out.append(KIND_INIT)
                encode_varint(n_threads, out)
                _encode_time(start_time, out)
                encode_varint(rid, out)
                out.append(1 if depth is not None else 0)
                if depth is not None:
                    encode_varint(depth, out)
            elif kind == "fin":
                _, time, count = record
                out.append(KIND_FIN)
                _encode_time(time, out)
                encode_varint(count, out)
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        return bytes(out)


# ----------------------------------------------------------------------
# Record stream decoder
# ----------------------------------------------------------------------
class RecordDecoder:
    """Stateful decoder: rebuilds regions from defs across chunks.

    Returns record tuples in the shape the encoder consumed, with
    decoded :class:`Region` objects interned in :attr:`registry` (so
    ``is``-comparison inside the replayed profiler is valid).
    """

    def __init__(self) -> None:
        self.registry = RegionRegistry()
        self._regions = {}

    def _region(self, rid: int) -> Region:
        region = self._regions.get(rid)
        if region is None:
            raise RecordingError(f"record references undefined region id {rid}")
        return region

    def decode(self, payload: bytes) -> List[tuple]:
        """Decode one chunk payload; raises :class:`RecordingError` on
        any malformed content (the CRC should have caught real tearing,
        so a decode failure means corruption-past-the-CRC or a bug)."""
        records: List[tuple] = []
        offset = 0
        data = payload
        while offset < len(data):
            kind = data[offset]
            offset += 1
            if kind == KIND_REGION_DEF:
                rid, offset = decode_varint(data, offset)
                name, offset = _decode_str(data, offset)
                type_value, offset = _decode_str(data, offset)
                if offset >= len(data):
                    raise RecordingError("truncated region def")
                flags = data[offset]
                offset += 1
                file = None
                line = None
                if flags & 1:
                    file, offset = _decode_str(data, offset)
                if flags & 2:
                    line, offset = decode_varint(data, offset)
                try:
                    region_type = RegionType(type_value)
                except ValueError as exc:
                    raise RecordingError(
                        f"unknown region type {type_value!r}"
                    ) from exc
                if rid in self._regions:
                    raise RecordingError(f"duplicate region def for id {rid}")
                # Pin the replayed region to the wire id (= the live
                # run's registry handle): one shared intern table, so
                # recorded-and-replayed batches agree on region ids.
                self._regions[rid] = self.registry.register(
                    name, region_type, file, line, handle=rid
                )
            elif kind == KIND_INIT:
                n_threads, offset = decode_varint(data, offset)
                start_time, offset = _decode_time(data, offset)
                rid, offset = decode_varint(data, offset)
                if offset >= len(data):
                    raise RecordingError("truncated init record")
                has_depth = data[offset]
                offset += 1
                depth = None
                if has_depth:
                    depth, offset = decode_varint(data, offset)
                records.append(
                    ("init", n_threads, start_time, self._region(rid), depth)
                )
            elif kind == KIND_ENTER:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                rid, offset = decode_varint(data, offset)
                parameter, offset = _decode_parameter(data, offset)
                records.append(
                    ("enter", thread_id, time, self._region(rid), parameter)
                )
            elif kind == KIND_EXIT:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                rid, offset = decode_varint(data, offset)
                records.append(("exit", thread_id, time, self._region(rid)))
            elif kind == KIND_TASK_BEGIN:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                rid, offset = decode_varint(data, offset)
                instance, offset = _decode_signed(data, offset)
                parameter, offset = _decode_parameter(data, offset)
                records.append(
                    (
                        "task_begin",
                        thread_id,
                        time,
                        self._region(rid),
                        instance,
                        parameter,
                    )
                )
            elif kind == KIND_TASK_END:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                rid, offset = decode_varint(data, offset)
                instance, offset = _decode_signed(data, offset)
                records.append(
                    ("task_end", thread_id, time, self._region(rid), instance)
                )
            elif kind == KIND_TASK_SWITCH:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                instance, offset = _decode_signed(data, offset)
                records.append(("task_switch", thread_id, time, instance))
            elif kind == KIND_METRIC:
                thread_id, offset = decode_varint(data, offset)
                time, offset = _decode_time(data, offset)
                counters, offset = _decode_json(data, offset)
                if not isinstance(counters, dict):
                    raise RecordingError(
                        f"metric counters are not a dict: {counters!r}"
                    )
                records.append(("metric", thread_id, time, counters))
            elif kind == KIND_PHASE_BEGIN:
                name, offset = _decode_str(data, offset)
                records.append(("phase_begin", name))
            elif kind == KIND_PHASE_END:
                name, offset = _decode_str(data, offset)
                records.append(("phase_end", name))
            elif kind == KIND_FIN:
                time, offset = _decode_time(data, offset)
                count, offset = decode_varint(data, offset)
                records.append(("fin", time, count))
            else:
                raise RecordingError(f"unknown record kind byte 0x{kind:02x}")
        return records
