"""Salvage a profile from whatever a dead run left on disk.

Preference order, newest evidence first:

1. **Current stream replay** -- truncate the torn tail, leniently
   replay the sealed prefix.  This recovers every event that reached a
   sealed chunk, strictly more than any checkpoint can know.
2. **Current checkpoint** -- if the stream is unreadable (bad header,
   undecodable first chunk), fall back to the cube partial the last
   checkpoint captured.
3. **Rotated generations** -- a warm-started retry that died early may
   have rotated a *previous* attempt's stream/checkpoint aside; walk
   those newest-first with the same stream-then-checkpoint preference.

The salvage replay is a pure function of the recorded bytes (no
context-dependent notes are injected), so ``repro verify --against``
can later re-derive the identical partial profile from the same prefix
-- byte-identical verification works for salvaged cubes too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cube.export import profile_from_dict
from repro.recorder.chunks import read_records
from repro.recorder.replay import rebuild_profile
from repro.recorder.store import (
    events_path,
    generation_events_path,
    list_generations,
    load_checkpoint,
)


@dataclass
class SalvageResult:
    """What salvage recovered and where it came from."""

    profile: object
    source: str  # "replay" or "checkpoint"
    generation: Optional[int]  # None = current attempt
    records: int
    chunks: int
    complete: bool
    torn_bytes: int
    notes: list

    def describe(self) -> dict:
        return {
            "source": self.source,
            "generation": self.generation,
            "records": self.records,
            "chunks": self.chunks,
            "complete": self.complete,
            "torn_bytes": self.torn_bytes,
            "notes": list(self.notes),
        }


def _salvage_stream(path: str, *, truncate: bool, generation: Optional[int]):
    stream = read_records(path, truncate=truncate)
    if not stream.records:
        return None
    try:
        profile = rebuild_profile(
            stream.records, strict=False, finish_time=None
        )
    except Exception as exc:
        stream.notes.append(f"lenient replay failed: {exc}")
        return None
    return SalvageResult(
        profile=profile,
        source="replay",
        generation=generation,
        records=len(stream.records),
        chunks=stream.chunks,
        complete=stream.complete,
        torn_bytes=stream.torn_bytes,
        notes=list(stream.notes),
    )


def _salvage_checkpoint(record_dir: str, generation: Optional[int]):
    checkpoint = load_checkpoint(record_dir, generation)
    if checkpoint is None or not checkpoint.get("profile"):
        return None
    try:
        profile = profile_from_dict(checkpoint["profile"])
    except Exception:
        return None  # unreadable checkpoint partial: keep walking
    cursor = checkpoint.get("cursor") or {}
    return SalvageResult(
        profile=profile,
        source="checkpoint",
        generation=generation,
        records=int(checkpoint.get("records") or cursor.get("records") or 0),
        chunks=int(cursor.get("chunks") or 0),
        complete=False,
        torn_bytes=0,
        notes=[f"recovered from checkpoint at t={checkpoint.get('time')}"],
    )


def salvage_recording(record_dir: str) -> Optional[SalvageResult]:
    """Best salvageable profile from ``record_dir``, or ``None``.

    Truncates the current stream's torn tail as a side effect (the only
    on-disk repair recovery ever performs), so later ``repro verify``
    and ``repro replay`` calls see the exact prefix salvage used.
    """
    result = _salvage_stream(
        events_path(record_dir), truncate=True, generation=None
    )
    if result is not None:
        return result
    result = _salvage_checkpoint(record_dir, None)
    if result is not None:
        return result
    for generation in reversed(list_generations(record_dir)):
        result = _salvage_stream(
            generation_events_path(record_dir, generation),
            truncate=False,
            generation=generation,
        )
        if result is not None:
            return result
        result = _salvage_checkpoint(record_dir, generation)
        if result is not None:
            return result
    return None


__all__ = ["SalvageResult", "salvage_recording"]
