"""Replay a recorded stream into a profile; verify it byte-identically.

The replay engine is deliberately independent of the live measurement
path: it feeds decoded records straight into a fresh
:class:`~repro.profiling.task_profiler.TaskProfiler` (phases and
metrics included -- concurrency phase maxima and metric counters are
part of the canonical cube, so skipping them would break byte
identity).  Region identity holds because the decoder interns regions
in its own registry, and canonical export reindexes regions by
(name, type, file, line), so registry handle numbering never matters.

``verify`` is the trust anchor: replay the stream *alone*, canonicalize
the rebuilt profile, and compare content hashes against what the live
run archived.  A mismatch on a complete stream is silent corruption or
nondeterminism -- surfaced as a structured :class:`DivergenceReport`
(and optionally raised as :class:`~repro.errors.ReplayDivergence`),
with sentinel-style exit semantics in the CLI: 0 match, 1 divergence,
2 unusable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ProfileError, RecordingError, ReplayDivergence
from repro.profiling.task_profiler import TaskProfiler
from repro.recorder.chunks import RecoveredStream, read_records
from repro.recorder.store import events_path, load_manifest


# ----------------------------------------------------------------------
# Stream -> profile
# ----------------------------------------------------------------------
def find_init(records: List[tuple]) -> Optional[tuple]:
    for record in records:
        if record[0] == "init":
            return record
    return None


def rebuild_profiler(
    records: List[tuple],
    *,
    strict: bool = True,
    finish_time: Optional[float] = None,
) -> TaskProfiler:
    """Drive a fresh profiler with the recorded callbacks.

    ``strict=True`` demands a complete stream (FIN record) and lets any
    inconsistency raise -- the verification mode.  ``strict=False`` is
    the salvage mode: inconsistencies and in-flight instances at the
    (possibly synthesized) end of stream are quarantined into the
    profile's salvage report instead.
    """
    init = find_init(records)
    if init is None:
        raise RecordingError(
            "recorded stream has no init record; nothing to replay"
        )
    _, n_threads, start_time, implicit_region, depth = init
    profiler = TaskProfiler(
        n_threads,
        implicit_region,
        start_time=start_time,
        max_call_path_depth=depth,
        strict=strict,
    )
    last_time = start_time
    fin_time: Optional[float] = None
    for record in records:
        kind = record[0]
        if kind == "enter":
            _, thread_id, time, region, parameter = record
            profiler.on_enter(thread_id, region, time, parameter)
            last_time = time
        elif kind == "exit":
            _, thread_id, time, region = record
            profiler.on_exit(thread_id, region, time)
            last_time = time
        elif kind == "task_begin":
            _, thread_id, time, region, instance, parameter = record
            profiler.on_task_begin(thread_id, region, instance, time, parameter)
            last_time = time
        elif kind == "task_end":
            _, thread_id, time, region, instance = record
            profiler.on_task_end(thread_id, region, instance, time)
            last_time = time
        elif kind == "task_switch":
            _, thread_id, time, instance = record
            profiler.on_task_switch(thread_id, instance, time)
            last_time = time
        elif kind == "metric":
            _, thread_id, time, counters = record
            profiler.on_metric(thread_id, counters, time)
            last_time = time
        elif kind == "phase_begin":
            profiler.on_phase_begin(record[1])
        elif kind == "phase_end":
            profiler.on_phase_end(record[1])
        elif kind == "fin":
            fin_time = record[1]
        elif kind == "init":
            continue
        else:  # pragma: no cover - decoder only emits known kinds
            raise RecordingError(f"unknown record kind {kind!r} in replay")
    if fin_time is None and strict:
        raise RecordingError(
            "recorded stream is incomplete (no FIN record); strict replay "
            "requires a complete stream -- use lenient replay to salvage"
        )
    end = fin_time if fin_time is not None else finish_time
    if end is None:
        end = last_time
    profiler.on_finish(end)
    return profiler


def rebuild_profile(
    records: List[tuple],
    *,
    strict: bool = True,
    finish_time: Optional[float] = None,
):
    return rebuild_profiler(
        records, strict=strict, finish_time=finish_time
    ).build_profile()


def replay_recording(record_dir: str, *, strict: Optional[bool] = None):
    """Load + replay a recording directory.

    Returns ``(profile, stream)``.  When ``strict`` is not forced, a
    complete stream replays strictly and an incomplete one leniently --
    what a human asking "show me what this recording holds" wants.
    """
    stream = read_records(events_path(record_dir))
    if not stream.records:
        raise RecordingError(
            f"no recoverable records in {events_path(record_dir)!r}: "
            + ("; ".join(stream.notes) or "empty stream")
        )
    if strict is None:
        strict = stream.complete
    profile = rebuild_profile(stream.records, strict=strict)
    return profile, stream


# ----------------------------------------------------------------------
# Divergence reporting
# ----------------------------------------------------------------------
@dataclass
class DivergenceReport:
    """Outcome of cross-checking a replayed profile against the live cube."""

    usable: bool
    matched: bool
    expected_sha: Optional[str] = None
    actual_sha: Optional[str] = None
    records: int = 0
    chunks: int = 0
    complete: bool = False
    strict: bool = True
    reasons: List[str] = field(default_factory=list)
    differences: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """Sentinel-style: 0 match, 1 divergence, 2 unusable."""
        if not self.usable:
            return 2
        return 0 if self.matched else 1

    def to_dict(self) -> dict:
        return {
            "usable": self.usable,
            "matched": self.matched,
            "expected_sha": self.expected_sha,
            "actual_sha": self.actual_sha,
            "records": self.records,
            "chunks": self.chunks,
            "complete": self.complete,
            "strict": self.strict,
            "reasons": list(self.reasons),
            "differences": list(self.differences),
            "exit_code": self.exit_code,
        }


def diff_profile_dicts(expected, actual, *, limit: int = 12) -> List[str]:
    """Bounded, human-readable diff of two canonical profile dicts."""
    out: List[str] = []

    def walk(a, b, path):
        if len(out) >= limit:
            return
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b)):
                if len(out) >= limit:
                    return
                if key not in a:
                    out.append(f"{path}.{key}: missing in live profile")
                elif key not in b:
                    out.append(f"{path}.{key}: missing in replayed profile")
                else:
                    walk(a[key], b[key], f"{path}.{key}")
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                out.append(f"{path}: length {len(a)} != {len(b)}")
                return
            for index, (item_a, item_b) in enumerate(zip(a, b)):
                if len(out) >= limit:
                    return
                walk(item_a, item_b, f"{path}[{index}]")
        elif a != b:
            out.append(f"{path}: {a!r} != {b!r}")

    walk(expected, actual, "$")
    if len(out) >= limit:
        out.append("... (diff truncated)")
    return out


def verify_recording(
    record_dir: str,
    *,
    expected_sha: Optional[str] = None,
    expected_dict: Optional[dict] = None,
    raise_on_divergence: bool = False,
) -> DivergenceReport:
    """Replay ``record_dir`` and cross-check against the live cube.

    The expectation comes from, in order: ``expected_sha`` /
    ``expected_dict`` (e.g. an archived run supplied via ``--against``),
    else the ``live_sha256`` the tolerant runner stamped into the
    manifest after a clean run.  A complete stream replays strictly; an
    incomplete (salvaged) one replays leniently, which verifies a
    salvaged partial against what its salvage replay produced.
    """
    from repro.archive.store import content_hash
    from repro.cube.export import profile_to_dict

    report = DivergenceReport(usable=False, matched=False)
    stream: RecoveredStream = read_records(events_path(record_dir))
    report.records = len(stream.records)
    report.chunks = stream.chunks
    report.complete = stream.complete
    report.reasons.extend(stream.notes)
    if not stream.records:
        report.reasons.append("no recoverable records in stream")
        return report
    report.strict = stream.complete
    if expected_dict is not None and expected_sha is None:
        import hashlib
        import json

        expected_sha = hashlib.sha256(
            json.dumps(
                expected_dict, sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
        ).hexdigest()
    if expected_sha is None:
        manifest = load_manifest(record_dir) or {}
        expected_sha = manifest.get("live_sha256")
        if expected_sha is None:
            report.reasons.append(
                "no expectation to verify against: manifest has no "
                "live_sha256 (run did not finish cleanly?) and no "
                "--against reference was given"
            )
            return report
    report.expected_sha = expected_sha
    try:
        profile = rebuild_profile(stream.records, strict=report.strict)
    except (ProfileError, RecordingError) as exc:
        report.usable = True  # we had records and an expectation...
        report.reasons.append(f"replay failed: {exc}")
        report.matched = False
        if raise_on_divergence:
            raise ReplayDivergence(str(exc), report=report) from exc
        return report
    actual = profile_to_dict(profile)
    report.actual_sha = content_hash(profile)
    report.usable = True
    report.matched = report.actual_sha == report.expected_sha
    if not report.matched:
        report.reasons.append(
            "replayed profile does not reproduce the recorded cube"
        )
        if expected_dict is not None:
            report.differences = diff_profile_dicts(expected_dict, actual)
        if raise_on_divergence:
            raise ReplayDivergence(
                f"replay of {record_dir!r} diverged: expected "
                f"{report.expected_sha[:12]}, got {report.actual_sha[:12]}",
                report=report,
            )
    return report
