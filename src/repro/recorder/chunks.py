"""Sealed, checksummed chunk framing for the recorded event stream.

Layout of ``events.chunks``::

    b"RPRC" | version u8          -- file header (5 bytes)
    [ seq u32 | length u32 | crc32 u32 | payload ... ]*   -- sealed chunks

Each chunk payload is a batch of records encoded by
:class:`repro.recorder.codec.RecordEncoder`.  Sequence numbers are
consecutive from zero and the CRC covers the payload, so a reader can
always answer "which prefix of this file is trustworthy?":

* short header / short payload  -> torn tail (the write was cut off)
* CRC mismatch                  -> torn or corrupted tail
* sequence gap or absurd length -> corrupted tail

Recovery (:func:`recover_chunks`) stops at the first such defect and,
when asked, truncates the file back to the last sealed chunk -- the only
repair a kill -9 ever requires, because the writer appends whole chunks
with a single buffered write + flush.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RecordingError
from repro.recorder.codec import KIND_FIN, RecordDecoder, RecordEncoder

MAGIC = b"RPRC"
FORMAT_VERSION = 1
HEADER = MAGIC + bytes([FORMAT_VERSION])

_CHUNK_HEADER = struct.Struct("<III")  # seq, payload length, crc32

#: Upper bound on a single chunk payload; anything larger in a header is
#: treated as corruption rather than an allocation request.
MAX_CHUNK_BYTES = 64 * 1024 * 1024


class ChunkWriter:
    """Appends records, sealing them into checksummed chunks.

    The hot path is one ``list.append`` per record; encoding, framing,
    and the write happen only when a chunk seals.  ``flush()`` after
    every seal means a SIGKILL loses at most the *unsealed* buffer;
    ``sync()`` (fsync) is reserved for checkpoints and close so the
    steady-state cost stays an in-process flush.
    """

    def __init__(self, path: str, *, chunk_records: int = 512) -> None:
        if chunk_records < 1:
            raise ValueError(f"chunk_records must be >= 1, got {chunk_records}")
        self.path = path
        self.chunk_records = chunk_records
        self.sealed_chunks = 0
        self.sealed_records = 0
        #: Unsealed record buffer.  Public and identity-stable (``seal``
        #: clears it in place) so hot callers can append to it directly
        #: and skip a method call per record.
        self.buffer: List[tuple] = []
        self._encoder = RecordEncoder()
        self._handle = open(path, "wb")
        try:
            self._handle.write(HEADER)
            self._handle.flush()
        except Exception:
            self._handle.close()
            raise

    @property
    def closed(self) -> bool:
        return self._handle.closed

    @property
    def pending_records(self) -> int:
        return len(self.buffer)

    def append(self, record: tuple) -> None:
        self.buffer.append(record)
        if len(self.buffer) >= self.chunk_records:
            self.seal()

    def seal(self) -> None:
        """Encode and write the buffered records as one sealed chunk."""
        buffered = self.buffer
        if not buffered:
            return
        payload = self._encoder.encode(buffered)
        header = _CHUNK_HEADER.pack(
            self.sealed_chunks, len(payload), zlib.crc32(payload)
        )
        self._handle.write(header + payload)
        self._handle.flush()
        self.sealed_records += len(buffered)
        self.sealed_chunks += 1
        buffered.clear()

    def sync(self) -> None:
        """Seal and fsync -- the durability point checkpoints rely on."""
        self.seal()
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def cursor(self) -> dict:
        """Position of the sealed prefix (what recovery can rebuild)."""
        return {"chunks": self.sealed_chunks, "records": self.sealed_records}

    def close(self, finish_time: Optional[float] = None) -> None:
        """Seal the tail and close; with ``finish_time``, append the FIN
        record that marks the stream complete for strict replay."""
        if self._handle.closed:
            return
        if finish_time is not None:
            self.append(("fin", finish_time, self.sealed_records + len(self.buffer)))
        try:
            self.sync()
        finally:
            self._handle.close()

    def abort(self) -> None:
        """Close without sealing (used when initialization fails)."""
        if not self._handle.closed:
            self._handle.close()


@dataclass
class RecoveredStream:
    """Result of reading an ``events.chunks`` file defensively."""

    records: List[tuple] = field(default_factory=list)
    chunks: int = 0
    good_bytes: int = 0
    total_bytes: int = 0
    header_ok: bool = True
    truncated: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.good_bytes

    @property
    def complete(self) -> bool:
        return bool(self.records) and self.records[-1][0] == "fin"

    @property
    def finish_time(self) -> Optional[float]:
        if self.complete:
            return self.records[-1][1]
        return None

    def summary(self) -> dict:
        return {
            "records": len(self.records),
            "chunks": self.chunks,
            "complete": self.complete,
            "good_bytes": self.good_bytes,
            "torn_bytes": self.torn_bytes,
            "notes": list(self.notes),
        }


def recover_chunks(path: str) -> RecoveredStream:
    """Read the trustworthy prefix of a chunk file.

    Never raises on damaged input: whatever defect ends the scan is
    described in ``notes`` and everything before it is returned.  A
    missing or mangled file header makes the whole file untrustworthy
    (``header_ok=False``, zero records).
    """
    stream = RecoveredStream()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        stream.header_ok = False
        stream.notes.append(f"unreadable stream: {exc}")
        return stream
    stream.total_bytes = len(data)
    if len(data) < len(HEADER) or data[: len(MAGIC)] != MAGIC:
        stream.header_ok = False
        stream.notes.append("missing or torn file header")
        return stream
    if data[len(MAGIC)] != FORMAT_VERSION:
        stream.header_ok = False
        stream.notes.append(
            f"unsupported stream version {data[len(MAGIC)]} "
            f"(supported: {FORMAT_VERSION})"
        )
        return stream
    offset = len(HEADER)
    stream.good_bytes = offset
    decoder = RecordDecoder()
    while offset < len(data):
        if offset + _CHUNK_HEADER.size > len(data):
            stream.notes.append("torn chunk header at tail")
            break
        seq, length, crc = _CHUNK_HEADER.unpack_from(data, offset)
        if seq != stream.chunks:
            stream.notes.append(
                f"sequence gap: expected chunk {stream.chunks}, found {seq}"
            )
            break
        if length > MAX_CHUNK_BYTES:
            stream.notes.append(f"implausible chunk length {length}")
            break
        start = offset + _CHUNK_HEADER.size
        end = start + length
        if end > len(data):
            stream.notes.append(f"torn chunk payload in chunk {seq}")
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            stream.notes.append(f"crc mismatch in chunk {seq}")
            break
        try:
            records = decoder.decode(payload)
        except RecordingError as exc:
            stream.notes.append(f"undecodable chunk {seq}: {exc}")
            break
        stream.records.extend(records)
        stream.chunks += 1
        offset = end
        stream.good_bytes = offset
    return stream


def read_records(path: str, *, truncate: bool = False) -> RecoveredStream:
    """Recover the sealed prefix; optionally truncate the torn tail.

    Truncation rewinds the file to the last sealed chunk so later
    readers (and warm-started writers rotating the file aside) see a
    clean stream.  A file with a bad header is left untouched -- there
    is no trustworthy prefix to truncate *to*.
    """
    stream = recover_chunks(path)
    if truncate and stream.header_ok and stream.torn_bytes > 0:
        try:
            with open(path, "rb+") as handle:
                handle.truncate(stream.good_bytes)
            stream.truncated = True
            stream.notes.append(f"truncated {stream.torn_bytes} torn tail bytes")
            stream.total_bytes = stream.good_bytes
        except OSError as exc:
            stream.notes.append(f"failed to truncate torn tail: {exc}")
    return stream


def stream_has_fin(records: List[tuple]) -> bool:
    return bool(records) and records[-1][0] == "fin"


__all__ = [
    "ChunkWriter",
    "RecoveredStream",
    "recover_chunks",
    "read_records",
    "stream_has_fin",
    "MAGIC",
    "FORMAT_VERSION",
    "HEADER",
    "MAX_CHUNK_BYTES",
    "KIND_FIN",
]
