"""Durable event recording, checkpointed salvage, and replay verification.

The recording substrate (:class:`repro.substrates.recorder.RecorderSubstrate`)
spills every measurement event to sealed CRC32-checksummed chunks and
periodically checkpoints the live profiler as a canonical-JSON cube
partial.  This package holds everything around that stream:

* :mod:`~repro.recorder.codec` / :mod:`~repro.recorder.chunks` -- the
  compact binary framing and torn-tail-tolerant recovery;
* :mod:`~repro.recorder.store` -- the on-disk layout (manifest,
  checkpoint, warm-start generations);
* :mod:`~repro.recorder.replay` -- stream -> profile reconstruction and
  byte-identical verification against the live cube;
* :mod:`~repro.recorder.salvage` -- best-effort recovery of a partial
  profile from whatever a dead run left behind.
"""

from repro.recorder.chunks import (
    ChunkWriter,
    RecoveredStream,
    read_records,
    recover_chunks,
)
from repro.recorder.codec import RecordDecoder, RecordEncoder
from repro.recorder.replay import (
    DivergenceReport,
    diff_profile_dicts,
    rebuild_profile,
    rebuild_profiler,
    replay_recording,
    verify_recording,
)
from repro.recorder.salvage import SalvageResult, salvage_recording
from repro.recorder.store import (
    checkpoint_path,
    events_path,
    list_generations,
    load_checkpoint,
    load_manifest,
    manifest_path,
    update_manifest,
)


def record_live_profile(record_dir: str, profile) -> None:
    """Stamp the live cube's content hash into the recording manifest.

    Called by the tolerant runner after a clean run: the recorder
    finalizes *before* the profile artifact exists, so the verification
    target is added post-hoc.  ``repro verify`` compares its replayed
    hash against this value.
    """
    from repro.archive.store import content_hash

    update_manifest(record_dir, live_sha256=content_hash(profile))


__all__ = [
    "ChunkWriter",
    "RecoveredStream",
    "read_records",
    "recover_chunks",
    "RecordDecoder",
    "RecordEncoder",
    "DivergenceReport",
    "diff_profile_dicts",
    "rebuild_profile",
    "rebuild_profiler",
    "replay_recording",
    "verify_recording",
    "SalvageResult",
    "salvage_recording",
    "checkpoint_path",
    "events_path",
    "list_generations",
    "load_checkpoint",
    "load_manifest",
    "manifest_path",
    "update_manifest",
    "record_live_profile",
]
