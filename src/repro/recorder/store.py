"""On-disk layout of a recording directory.

A recording lives in one directory per run attempt family::

    <record_dir>/
        events.chunks        -- sealed chunk stream (repro.recorder.chunks)
        checkpoint.json      -- latest profiler snapshot + stream cursor
        manifest.json        -- stream identity, completeness, live sha256
        events.chunks.<N>    -- streams rotated aside by warm-started retries
        checkpoint.json.<N>  -- their matching checkpoints

All JSON artifacts are canonical (sorted keys, compact separators) and
written via :func:`repro.ioutil.atomic_write`, so a kill -9 never leaves
a half-written manifest or checkpoint -- the worst case is a stale one.
Retries never overwrite salvageable state: a warm-started recorder
rotates the previous attempt's stream/checkpoint to the next free
``.<N>`` suffix (a *generation*) before opening a fresh stream, and
salvage walks generations newest-first until it finds usable bytes.
"""

from __future__ import annotations

import json
import os
import re
from typing import List, Optional

from repro.ioutil import atomic_write

EVENTS_NAME = "events.chunks"
CHECKPOINT_NAME = "checkpoint.json"
MANIFEST_NAME = "manifest.json"
CHECKPOINT_VERSION = 1
MANIFEST_VERSION = 1

_GENERATION_RE = re.compile(r"^events\.chunks\.(\d+)$")


def events_path(record_dir: str) -> str:
    return os.path.join(record_dir, EVENTS_NAME)


def checkpoint_path(record_dir: str) -> str:
    return os.path.join(record_dir, CHECKPOINT_NAME)


def manifest_path(record_dir: str) -> str:
    return os.path.join(record_dir, MANIFEST_NAME)


def _canonical(data: dict) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _load_json(path: str) -> Optional[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def write_manifest(record_dir: str, data: dict) -> None:
    payload = dict(data)
    payload.setdefault("version", MANIFEST_VERSION)
    atomic_write(manifest_path(record_dir), _canonical(payload))


def load_manifest(record_dir: str) -> Optional[dict]:
    return _load_json(manifest_path(record_dir))


def update_manifest(record_dir: str, **fields) -> Optional[dict]:
    """Merge ``fields`` into the manifest (no-op if none exists yet)."""
    manifest = load_manifest(record_dir)
    if manifest is None:
        return None
    manifest.update(fields)
    write_manifest(record_dir, manifest)
    return manifest


# ----------------------------------------------------------------------
# Checkpoint
# ----------------------------------------------------------------------
def write_checkpoint(record_dir: str, data: dict) -> None:
    payload = dict(data)
    payload.setdefault("version", CHECKPOINT_VERSION)
    atomic_write(checkpoint_path(record_dir), _canonical(payload))


def load_checkpoint(record_dir: str, generation: Optional[int] = None) -> Optional[dict]:
    path = checkpoint_path(record_dir)
    if generation is not None:
        path = f"{path}.{generation}"
    data = _load_json(path)
    if data is None or data.get("version") != CHECKPOINT_VERSION:
        return None
    return data


# ----------------------------------------------------------------------
# Generations (warm-start rotation)
# ----------------------------------------------------------------------
def list_generations(record_dir: str) -> List[int]:
    """Rotated-aside stream generations, oldest first."""
    try:
        names = os.listdir(record_dir)
    except OSError:
        return []
    found = []
    for name in names:
        match = _GENERATION_RE.match(name)
        if match:
            found.append(int(match.group(1)))
    return sorted(found)


def rotate_generation(record_dir: str) -> Optional[int]:
    """Move the current stream + checkpoint aside to the next ``.<N>``.

    Returns the generation number used, or ``None`` if there was nothing
    to rotate.  The stream and its checkpoint rotate *together* so a
    checkpoint cursor never points into a different attempt's stream.
    """
    src_events = events_path(record_dir)
    if not os.path.exists(src_events):
        return None
    generations = list_generations(record_dir)
    generation = (generations[-1] + 1) if generations else 0
    os.replace(src_events, f"{src_events}.{generation}")
    src_checkpoint = checkpoint_path(record_dir)
    if os.path.exists(src_checkpoint):
        os.replace(src_checkpoint, f"{src_checkpoint}.{generation}")
    return generation


def generation_events_path(record_dir: str, generation: int) -> str:
    return f"{events_path(record_dir)}.{generation}"


__all__ = [
    "EVENTS_NAME",
    "CHECKPOINT_NAME",
    "MANIFEST_NAME",
    "CHECKPOINT_VERSION",
    "MANIFEST_VERSION",
    "events_path",
    "checkpoint_path",
    "manifest_path",
    "write_manifest",
    "load_manifest",
    "update_manifest",
    "write_checkpoint",
    "load_checkpoint",
    "list_generations",
    "rotate_generation",
    "generation_events_path",
]
