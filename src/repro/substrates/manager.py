"""The substrate manager: one listener fanning out to many substrates.

The manager implements the POMP2 listener protocol, so the
:class:`~repro.instrument.layer.InstrumentationLayer` needs no special
cases: it dispatches to *one* listener, and that listener happens to be
the manager driving every attached substrate.  This replaces the old
ad-hoc wiring (profiler as primary listener, recorder bolted on via
``add_listener``) with the Score-P substrate architecture.

Two responsibilities beyond fan-out:

* **Graceful degradation.**  An exception from a non-essential
  substrate's callback does not kill the run: the substrate is
  *quarantined* (detached from further dispatch) and the incident is
  recorded as a :class:`SubstrateIncident` -- the runtime surfaces those
  through the PR-1 salvage machinery (`profile.salvage` notes).
  Essential substrates (the profiler, the tracer) keep the historical
  strict behavior: their exceptions propagate.

* **Per-consumer overhead accounting.**  Each substrate declares its own
  ``per_event_cost``; :attr:`extra_cost_per_event` is the sum the
  instrumentation layer charges on top of its base cost, and
  :meth:`report` breaks the charged virtual time down per substrate
  (paper Section V made attributable per consumer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.errors import SubstrateError
from repro.events.model import InstanceId
from repro.events.regions import Region, RegionRegistry
from repro.substrates.base import Substrate


@dataclass(frozen=True)
class SubstrateIncident:
    """One quarantine event: which substrate broke, where, and how."""

    substrate: str
    callback: str
    error: str
    #: how many events the manager had delivered when the substrate broke
    events_delivered: int

    def __str__(self) -> str:
        return (
            f"substrate {self.substrate!r} quarantined in {self.callback} "
            f"after {self.events_delivered} event(s): {self.error}"
        )


#: Callback names the manager builds dispatch tables for.
_DISPATCH_CALLBACKS = (
    "on_enter",
    "on_exit",
    "on_task_begin",
    "on_task_end",
    "on_task_switch",
    "on_metric",
    "on_phase_begin",
    "on_phase_end",
)


class SubstrateManager:
    """Drives a set of substrates through one run (POMP2 listener)."""

    def __init__(self, substrates: Sequence[Substrate]) -> None:
        names = [s.name for s in substrates]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SubstrateError(
                f"duplicate substrate name(s) in one manager: {', '.join(dupes)}"
            )
        #: every attached substrate, in attachment order (fixed for life)
        self.substrates: List[Substrate] = list(substrates)
        #: the substrates still receiving events (shrinks on quarantine)
        self._active: List[Substrate] = list(self.substrates)
        self.incidents: List[SubstrateIncident] = []
        #: events fanned out so far (enter/exit/task lifecycle; metrics and
        #: phase markers piggyback and are not counted, mirroring
        #: ``InstrumentationLayer.events_dispatched``)
        self.events_delivered = 0
        self._finalized = False
        self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        """Per-callback target lists, skipping inherited no-op callbacks.

        A substrate that leaves a callback at the :class:`Substrate`
        default never appears in that callback's table, so fan-out pays
        only for consumers that actually listen.  Instance-level shadowing
        (the profiler/tracer bind their backend's methods onto ``self``
        during ``initialize``) is respected because the check compares the
        *bound* method against the base class, which is why the tables are
        rebuilt after initialization and after every quarantine.
        """
        for callback in _DISPATCH_CALLBACKS:
            base = getattr(Substrate, callback)
            targets = [
                s
                for s in self._active
                if getattr(getattr(s, callback), "__func__", None) is not base
            ]
            setattr(self, "_targets_" + callback, targets)
        # Batched dispatch targets: a substrate belongs in the batch
        # fan-out if it consumes batches natively (overridden on_batch)
        # or if any of its six event callbacks is overridden (the base
        # on_batch shim then replays the batch through them).  A
        # substrate with neither -- the governor -- is skipped entirely.
        batch_base = Substrate.on_batch
        event_bases = tuple(
            getattr(Substrate, cb) for cb in _DISPATCH_CALLBACKS[:6]
        )
        self._targets_on_batch = [
            s
            for s in self._active
            if getattr(s.on_batch, "__func__", None) is not batch_base
            or any(
                getattr(getattr(s, cb), "__func__", None) is not base
                for cb, base in zip(_DISPATCH_CALLBACKS[:6], event_bases)
            )
        ]
        # Satellite fix: the per-event charge used to be re-summed by the
        # property on every event; cache it here and re-derive it on any
        # dispatch rebuild (attachment-time init, quarantine).  The sum
        # spans *all attached* substrates -- per the documented contract a
        # quarantine invalidates the cache but never lowers the charge.
        self._extra_cost_per_event = float(
            sum(s.per_event_cost for s in self.substrates)
        )

    # ------------------------------------------------------------------
    @property
    def extra_cost_per_event(self) -> float:
        """Summed per-event cost of all attached substrates.

        Fixed at attachment time (quarantining a substrate does not
        retroactively lower the charge -- the cost model is part of the
        virtual timeline and must stay deterministic).  The value is
        cached by :meth:`_rebuild_dispatch`; reading it is a field load,
        not a per-event re-summation.
        """
        return self._extra_cost_per_event

    def get(self, name: str) -> Optional[Substrate]:
        """The attached substrate with this name, or ``None``."""
        for substrate in self.substrates:
            if substrate.name == name:
                return substrate
        return None

    def find(self, cls: Type[Substrate]) -> Optional[Substrate]:
        """The first attached substrate of this class, or ``None``."""
        for substrate in self.substrates:
            if isinstance(substrate, cls):
                return substrate
        return None

    def quarantined(self, name: str) -> bool:
        return any(i.substrate == name for i in self.incidents)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        """Initialize every substrate.  Initialization errors always
        propagate -- a substrate that cannot even start is a configuration
        problem, not a mid-run measurement glitch to degrade around."""
        for substrate in self._active:
            substrate.initialize(registry, n_threads, start_time, implicit_region)
        # Initialization may have bound backend methods onto instances
        # (profiler/tracer shadowing): refresh the dispatch tables.
        self._rebuild_dispatch()

    def artifacts(self) -> Dict[str, Any]:
        """``{name: artifact}`` for every attached substrate.

        Quarantined substrates are asked too (their partial artifact can
        still be useful); an artifact() that itself raises yields ``None``.
        """
        out: Dict[str, Any] = {}
        for substrate in self.substrates:
            try:
                out[substrate.name] = substrate.artifact()
            except Exception:
                out[substrate.name] = None
        return out

    def report(self) -> Dict[str, dict]:
        """Per-substrate dispatch/overhead accounting.

        ``events`` is how many events the substrate actually received
        (delivery stops at quarantine), ``charged_us`` the virtual time
        its declared ``per_event_cost`` charged to the run.
        """
        by_name = {i.substrate: i for i in self.incidents}
        out: Dict[str, dict] = {}
        for substrate in self.substrates:
            incident = by_name.get(substrate.name)
            events = (
                incident.events_delivered if incident is not None else self.events_delivered
            )
            out[substrate.name] = {
                "events": events,
                "per_event_cost": substrate.per_event_cost,
                "charged_us": events * substrate.per_event_cost,
                "essential": substrate.essential,
                "quarantined": incident is not None,
                "error": incident.error if incident is not None else None,
            }
        return out

    # ------------------------------------------------------------------
    def _quarantine(self, substrate: Substrate, callback: str, exc: Exception) -> None:
        self.incidents.append(
            SubstrateIncident(
                substrate=substrate.name,
                callback=callback,
                error=f"{type(exc).__name__}: {exc}",
                events_delivered=self.events_delivered,
            )
        )
        # Rebuild rather than remove-in-place: dispatch loops iterate a
        # snapshot of the old lists, so this is safe mid-fan-out.
        self._active = [s for s in self._active if s is not substrate]
        self._rebuild_dispatch()

    # ------------------------------------------------------------------
    # POMP2 listener protocol
    # ------------------------------------------------------------------
    def on_enter(
        self,
        thread_id: int,
        region: Region,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        self.events_delivered += 1
        for substrate in self._targets_on_enter:
            try:
                substrate.on_enter(thread_id, region, time, parameter)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_enter", exc)

    def on_exit(self, thread_id: int, region: Region, time: float) -> None:
        self.events_delivered += 1
        for substrate in self._targets_on_exit:
            try:
                substrate.on_exit(thread_id, region, time)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_exit", exc)

    def on_task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        self.events_delivered += 1
        for substrate in self._targets_on_task_begin:
            try:
                substrate.on_task_begin(thread_id, region, instance, time, parameter)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_task_begin", exc)

    def on_task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        self.events_delivered += 1
        for substrate in self._targets_on_task_end:
            try:
                substrate.on_task_end(thread_id, region, instance, time)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_task_end", exc)

    def on_task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        self.events_delivered += 1
        for substrate in self._targets_on_task_switch:
            try:
                substrate.on_task_switch(thread_id, instance, time)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_task_switch", exc)

    def on_metric(self, thread_id: int, counters: dict, time: float) -> None:
        for substrate in self._targets_on_metric:
            try:
                substrate.on_metric(thread_id, counters, time)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_metric", exc)

    def on_phase_begin(self, name: str) -> None:
        for substrate in self._targets_on_phase_begin:
            try:
                substrate.on_phase_begin(name)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_phase_begin", exc)

    def on_phase_end(self, name: str) -> None:
        for substrate in self._targets_on_phase_end:
            try:
                substrate.on_phase_end(name)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_phase_end", exc)

    def on_batch(self, batch) -> None:
        """Fan one columnar batch out to every batch-capable substrate.

        This is the hot-path replacement for per-event fan-out: one
        dispatch call per *flush* instead of one per event, with each
        substrate consuming the whole batch (natively or through the
        base-class replay shim).  Every substrate still observes the
        same events in the same order as under per-event dispatch; only
        the interleaving *between* substrates coarsens from per-event to
        per-batch.

        Quarantine semantics: an exception from a non-essential
        substrate quarantines it exactly as in per-event dispatch.  The
        incident's ``events_delivered`` is the post-batch count -- with
        deferred dispatch the batch is the granularity at which delivery
        is accounted.
        """
        self.events_delivered += batch.counted
        for substrate in self._targets_on_batch:
            try:
                substrate.on_batch(batch)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "on_batch", exc)

    def on_finish(self, time: float) -> None:
        """End of measurement: finalize the still-active substrates.

        Quarantined substrates are *not* finalized -- they broke mid
        stream and their finalize would see inconsistent state; their
        incident record says why their artifact is partial.
        """
        if self._finalized:
            return
        self._finalized = True
        for substrate in self._active:
            try:
                substrate.finalize(time)
            except Exception as exc:
                if substrate.essential:
                    raise
                self._quarantine(substrate, "finalize", exc)
