"""The measurement-substrate lifecycle contract.

Score-P routes every measurement event through pluggable *substrates*
(the profiling substrate, the tracing substrate, plugin substrates);
event production is thereby decoupled from event consumption.  A
:class:`Substrate` is our analogue: a named consumer with a three-stage
lifecycle --

1. :meth:`initialize` -- called once, before the team starts, with the
   run's region registry, team size, virtual start time, and the implicit
   region handle.
2. the POMP2 event callbacks (``on_enter`` ... ``on_metric``) -- called
   for every measurement event the run produces, in virtual-time order
   per thread.
3. :meth:`finalize` -- called once with the region's virtual end time;
   afterwards :meth:`artifact` must return whatever the substrate
   produced (a :class:`~repro.profiling.profile.Profile`, a
   :class:`~repro.events.stream.ProgramTrace`, a statistics dict, ...).

All event callbacks default to no-ops so a substrate only implements the
events it cares about.  Substrates are attached to a run through
``RuntimeConfig(substrates=[...])`` (names resolved via the registry in
:mod:`repro.substrates.registry`, or instances passed directly) and are
driven by the :class:`~repro.substrates.manager.SubstrateManager`.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.events.batch import (
    K_ENTER,
    K_EXIT,
    K_METRIC,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    EventBatch,
)
from repro.events.model import InstanceId
from repro.events.regions import Region, RegionRegistry


class Substrate:
    """Base class for measurement substrates (all callbacks default no-op).

    Class attributes subclasses are expected to override:

    ``name``
        Unique identifier; also the registry key and the key under which
        the substrate's artifact and overhead figures are reported.
    ``essential``
        If True, an exception from this substrate's callbacks aborts the
        run (like the built-in profiler always did); if False -- the
        default -- the manager *quarantines* the substrate: it stops
        receiving events, the incident is recorded, and the run finishes
        with every other substrate intact (PR-1 graceful degradation).
    ``per_event_cost``
        Extra virtual µs the executing thread pays per dispatched event
        *for this substrate*, on top of the base instrumentation cost.
        This is what makes overhead attributable per consumer (paper
        Section V): the manager sums the active substrates' costs into
        the instrumentation layer's per-event charge and reports the
        per-substrate share.
    """

    name: str = "substrate"
    essential: bool = False
    per_event_cost: float = 0.0

    # -- lifecycle ------------------------------------------------------
    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        """Called once before the team starts executing."""

    def finalize(self, time: float) -> None:
        """Called once with the region's virtual end time."""

    def artifact(self) -> Any:
        """The substrate's product after :meth:`finalize` (or ``None``)."""
        return None

    # -- POMP2 event callbacks (no-ops by default) ----------------------
    def on_enter(
        self,
        thread_id: int,
        region: Region,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        pass

    def on_exit(self, thread_id: int, region: Region, time: float) -> None:
        pass

    def on_task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        pass

    def on_task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        pass

    def on_task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        pass

    def on_metric(self, thread_id: int, counters: dict, time: float) -> None:
        pass

    def on_phase_begin(self, name: str) -> None:
        pass

    def on_phase_end(self, name: str) -> None:
        pass

    # -- batched dispatch ----------------------------------------------
    def on_batch(self, batch: EventBatch) -> None:
        """Consume one columnar :class:`~repro.events.batch.EventBatch`.

        The default implementation is the **fallback shim**: it replays
        the batch as the legacy per-event callbacks, so a substrate that
        only implements ``on_enter``/``on_exit``/... keeps working
        unchanged under batched dispatch.  Dispatch goes through
        ``self.on_*`` attribute lookup, so the method-shadowing idiom
        (instance attributes rebinding callbacks at initialize time, as
        the profiling and tracing substrates do) is honored.

        The shim contract: the substrate observes the *same events in
        the same order* as under per-event dispatch; exceptions escape
        to the manager exactly as they would from the per-event
        callbacks (the manager quarantines or aborts per ``essential``).
        Substrates override this with a native fast path when they can
        consume the columns directly.
        """
        on_enter = self.on_enter
        on_exit = self.on_exit
        on_task_begin = self.on_task_begin
        on_task_end = self.on_task_end
        on_task_switch = self.on_task_switch
        on_metric = self.on_metric
        for kind, thread_id, region, time, instance, payload in batch.rows():
            if kind == K_ENTER:
                on_enter(thread_id, region, time, payload)
            elif kind == K_EXIT:
                on_exit(thread_id, region, time)
            elif kind == K_TASK_BEGIN:
                on_task_begin(thread_id, region, instance, time, payload)
            elif kind == K_TASK_END:
                on_task_end(thread_id, region, instance, time)
            elif kind == K_TASK_SWITCH:
                on_task_switch(thread_id, instance, time)
            elif kind == K_METRIC:
                on_metric(thread_id, payload, time)

    def __repr__(self) -> str:
        flags = []
        if self.essential:
            flags.append("essential")
        if self.per_event_cost:
            flags.append(f"cost={self.per_event_cost:g}us")
        suffix = f" ({', '.join(flags)})" if flags else ""
        return f"<{type(self).__name__} {self.name!r}{suffix}>"
