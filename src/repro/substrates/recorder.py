"""The recording substrate: durable spill of the measurement event stream.

Every POMP2 callback the manager dispatches is appended -- as a plain
tuple, no encoding on the hot path -- to a :class:`ChunkWriter` that
seals batches into CRC32-checksummed, sequence-numbered chunks in
``<record_dir>/events.chunks``.  Periodically (every
``checkpoint_every`` records) the substrate fsyncs the sealed prefix
and writes ``checkpoint.json``: a canonical-JSON cube partial snapshot
of the live profiler plus the stream cursor, via ``atomic_write``.

The contract this buys:

* a SIGKILL at any instruction loses at most the unsealed record buffer
  (and nothing at all up to the last checkpoint's fsync barrier);
* the sealed prefix alone reconstructs a valid partial profile
  (:mod:`repro.recorder.replay`), and the checkpoint is a ready-made
  fallback if even the stream is unreadable;
* a retry pointed at the same ``record_dir`` *warm-starts*: the
  previous attempt's stream and checkpoint are rotated aside as a
  generation (never clobbered -- they remain salvageable) and the prior
  checkpoint is surfaced in the new manifest as ``warm_start``.

The substrate is deliberately **non-essential**: if recording itself
fails mid-run the manager quarantines it and the measured run finishes
normally -- losing durability must never lose the run.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.errors import SubstrateError
from repro.events.batch import (
    K_ENTER,
    K_EXIT,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    EventBatch,
)
from repro.events.model import InstanceId
from repro.events.regions import Region, RegionRegistry
from repro.recorder.chunks import ChunkWriter
from repro.recorder.store import (
    events_path,
    load_checkpoint,
    rotate_generation,
    write_checkpoint,
    write_manifest,
)
from repro.substrates.base import Substrate


class RecorderSubstrate(Substrate):
    """Spills the event stream to sealed chunks + periodic checkpoints.

    Must be constructed with a ``record_dir``; the registry entry exists
    so the name resolves, but an unconfigured instance refuses to
    initialize rather than silently recording nowhere.  The runtime
    injects the live :class:`~repro.profiling.task_profiler.TaskProfiler`
    (``self.profiler``) after substrate setup so checkpoints can
    snapshot real profiling state; without it, checkpoints still record
    the stream cursor.
    """

    name = "recorder"
    essential = False

    def __init__(
        self,
        record_dir: Optional[str] = None,
        *,
        chunk_records: int = 512,
        # The sealed stream is the primary durable artifact (flushed
        # every `chunk_records` appends); checkpoints only speed up
        # salvage and cover a corrupt-beyond-CRC stream, so their
        # cadence is coarse: a snapshot costs a few ms, and every 8192
        # events keeps the amortized cost under a microsecond per event.
        checkpoint_every: int = 8192,
        per_event_cost: float = 0.0,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.record_dir = record_dir
        self.chunk_records = chunk_records
        self.checkpoint_every = checkpoint_every
        self.per_event_cost = per_event_cost
        self.profiler = None  # injected by the runtime after initialize
        self.writer: Optional[ChunkWriter] = None
        self._pending: Optional[list] = None  # the writer's live buffer
        self.records = 0
        self.checkpoints = 0
        self.checkpoint_errors = 0
        self.warm_start: Optional[dict] = None
        self._init_pending: Optional[tuple] = None
        self._next_checkpoint = checkpoint_every
        self._last_time: float = 0.0
        self._finish_time: Optional[float] = None

    # -- lifecycle ------------------------------------------------------
    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        if self.record_dir is None:
            raise SubstrateError(
                "recorder substrate needs a record_dir; construct it as "
                "RecorderSubstrate(record_dir=...) or pass --record on the CLI"
            )
        if implicit_region is None:
            raise SubstrateError("recorder substrate needs an implicit region")
        os.makedirs(self.record_dir, exist_ok=True)
        # Warm start: never clobber a previous attempt's salvageable
        # state -- rotate it aside and remember where that attempt stood.
        previous = load_checkpoint(self.record_dir)
        generation = rotate_generation(self.record_dir)
        if previous is not None:
            self.warm_start = {
                "generation": generation,
                "time": previous.get("time"),
                "cursor": previous.get("cursor"),
            }
        self.writer = ChunkWriter(
            events_path(self.record_dir), chunk_records=self.chunk_records
        )
        # The writer's buffer is identity-stable (seal() clears it in
        # place), so the hot callbacks append to it without a method
        # call per record.
        self._pending = self.writer.buffer
        self._last_time = start_time
        # The INIT record needs the profiler's depth limit, which is
        # injected after manager initialization -- defer it to first use.
        self._init_pending = (n_threads, start_time, implicit_region)
        write_manifest(
            self.record_dir,
            {
                "complete": False,
                "n_threads": n_threads,
                "start_time": start_time,
                "chunk_records": self.chunk_records,
                "checkpoint_every": self.checkpoint_every,
                "warm_start": self.warm_start,
            },
        )

    def _ensure_init(self) -> None:
        if self._init_pending is None:
            return
        n_threads, start_time, implicit_region = self._init_pending
        self._init_pending = None
        depth = None
        profiler = self.profiler
        if profiler is not None and profiler.threads:
            depth = profiler.threads[0].max_call_path_depth
        self.writer.append(("init", n_threads, start_time, implicit_region, depth))

    def _append(self, record: tuple, time: Optional[float] = None) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(record)
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        if time is not None:
            self._last_time = time
            if self.records >= self._next_checkpoint:
                self._checkpoint(time)

    def _checkpoint(self, time: float) -> None:
        """Seal + fsync the stream, then snapshot profiler state.

        Checkpoint failures are recorded but never raised: losing a
        checkpoint degrades recovery, it must not abort measurement.
        """
        self._next_checkpoint = self.records + self.checkpoint_every
        try:
            self.writer.sync()
            data = {
                "time": time,
                "records": self.records,
                "cursor": self.writer.cursor(),
                "profile": None,
            }
            if self.profiler is not None:
                from repro.profiling.snapshot import snapshot_profile_dict

                data["profile"] = snapshot_profile_dict(self.profiler, time)
            write_checkpoint(self.record_dir, data)
            self.checkpoints += 1
        except Exception:
            self.checkpoint_errors += 1

    def finalize(self, time: float) -> None:
        if self.writer is None or self.writer.closed:
            return
        self._ensure_init()
        self._finish_time = time
        self.writer.close(finish_time=time)
        write_manifest(
            self.record_dir,
            {
                "complete": True,
                "n_threads": self._manifest_field("n_threads"),
                "start_time": self._manifest_field("start_time"),
                "chunk_records": self.chunk_records,
                "checkpoint_every": self.checkpoint_every,
                "warm_start": self.warm_start,
                "finish_time": time,
                "records": self.records,
                "chunks": self.writer.sealed_chunks,
                "checkpoints": self.checkpoints,
                "checkpoint_errors": self.checkpoint_errors,
            },
        )

    def _manifest_field(self, key: str):
        from repro.recorder.store import load_manifest

        manifest = load_manifest(self.record_dir) or {}
        return manifest.get(key)

    def artifact(self) -> Any:
        return {
            "record_dir": self.record_dir,
            "records": self.records,
            "chunks": self.writer.sealed_chunks if self.writer else 0,
            "checkpoints": self.checkpoints,
            "checkpoint_errors": self.checkpoint_errors,
            "complete": self._finish_time is not None,
            "finish_time": self._finish_time,
            "warm_start": self.warm_start,
        }

    # -- POMP2 event callbacks ------------------------------------------
    # The six hot callbacks repeat the `_append` body inline: one Python
    # frame per event instead of three.  At ~1 us of call overhead saved
    # per event that is worth the duplication -- it exceeds the entire
    # amortized encode cost.  `_append` stays as the funnel for the rare
    # records (phase brackets) and as the subclass hook point; harness
    # subclasses that must observe every record (DieAtRecordSubstrate)
    # wrap these callbacks too.
    def on_enter(
        self,
        thread_id: int,
        region: Region,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("enter", thread_id, time, region, parameter))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_exit(self, thread_id: int, region: Region, time: float) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("exit", thread_id, time, region))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("task_begin", thread_id, time, region, instance, parameter))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("task_end", thread_id, time, region, instance))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_task_switch(
        self, thread_id: int, instance: InstanceId, time: float
    ) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("task_switch", thread_id, time, instance))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_metric(self, thread_id: int, counters: dict, time: float) -> None:
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        pending.append(("metric", thread_id, time, counters))
        if len(pending) >= self.chunk_records:
            self.writer.seal()
        self.records += 1
        self._last_time = time
        if self.records >= self._next_checkpoint:
            self._checkpoint(time)

    def on_phase_begin(self, name: str) -> None:
        self._append(("phase_begin", name))

    def on_phase_end(self, name: str) -> None:
        self._append(("phase_end", name))

    # -- columnar fast path ---------------------------------------------
    #: the per-record hooks a subclass may have wrapped; if any of them
    #: (or `_append`) is overridden, batches must replay through the
    #: per-event callbacks so the subclass still observes every record.
    _BATCH_INLINED = (
        "on_enter",
        "on_exit",
        "on_task_begin",
        "on_task_end",
        "on_task_switch",
        "on_metric",
        "_append",
    )

    def on_batch(self, batch: EventBatch) -> None:
        """Decode a batch straight into the chunk writer's buffer.

        Appends the exact tuples the per-event callbacks would, with the
        identical per-record seal and checkpoint cadence (``records`` /
        ``_next_checkpoint`` advance one record at a time), so sealed
        chunk boundaries and checkpoint contents are byte-identical to a
        legacy per-event run.  Subclasses that override any hot callback
        or ``_append`` (fault-injection harnesses count records that
        way) get the per-event replay shim instead.
        """
        cls = type(self)
        if cls is not RecorderSubstrate and any(
            getattr(cls, name) is not getattr(RecorderSubstrate, name)
            for name in self._BATCH_INLINED
        ):
            return super().on_batch(batch)
        if self._init_pending is not None:
            self._ensure_init()
        pending = self._pending
        chunk_records = self.chunk_records
        seal = self.writer.seal
        records = self.records
        for kind, thread_id, region, time, instance, payload in batch.rows():
            if kind == K_ENTER:
                pending.append(("enter", thread_id, time, region, payload))
            elif kind == K_EXIT:
                pending.append(("exit", thread_id, time, region))
            elif kind == K_TASK_BEGIN:
                pending.append(
                    ("task_begin", thread_id, time, region, instance, payload)
                )
            elif kind == K_TASK_END:
                pending.append(("task_end", thread_id, time, region, instance))
            elif kind == K_TASK_SWITCH:
                pending.append(("task_switch", thread_id, time, instance))
            else:
                pending.append(("metric", thread_id, time, payload))
            if len(pending) >= chunk_records:
                seal()
            records += 1
            self._last_time = time
            if records >= self._next_checkpoint:
                self.records = records
                self._checkpoint(time)
        self.records = records
