"""The tracing substrate: full event recording as a substrate.

Wraps :class:`~repro.events.stream.ProgramTrace` +
:class:`~repro.instrument.pomp2.RecordingListener`; like the profiling
substrate it shadows the recorder's bound methods onto itself at
:meth:`initialize`, so recording through the manager produces the same
trace the old ``add_listener`` wiring did.
"""

from __future__ import annotations

from typing import Optional

from repro.events.batch import (
    K_ENTER,
    K_EXIT,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    EventBatch,
)
from repro.events.regions import Region, RegionRegistry
from repro.events.stream import ProgramTrace
from repro.instrument.pomp2 import RecordingListener
from repro.substrates.base import Substrate


class TracingSubstrate(Substrate):
    """Records every event into a ProgramTrace (the run's ``trace``)."""

    name = "tracing"
    essential = True

    def __init__(self, per_event_cost: float = 0.0) -> None:
        self.per_event_cost = per_event_cost
        self.trace: Optional[ProgramTrace] = None
        self._recorder: Optional[RecordingListener] = None

    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        self.trace = ProgramTrace(n_threads, registry)
        recorder = RecordingListener(self.trace)
        self._recorder = recorder
        self.on_enter = recorder.on_enter
        self.on_exit = recorder.on_exit
        self.on_task_begin = recorder.on_task_begin
        self.on_task_end = recorder.on_task_end
        self.on_task_switch = recorder.on_task_switch

    def on_batch(self, batch: EventBatch) -> None:
        """Native batch consume: one loop building events straight into
        the trace, bypassing the per-event listener frames.

        ``trace.record`` is looked up once per batch *through the
        instance*, so a fault injector that shadowed it (stream-fault
        mode) still intercepts every recorded event.
        """
        from repro.events.model import (
            EnterEvent,
            ExitEvent,
            TaskBeginEvent,
            TaskEndEvent,
            TaskSwitchEvent,
            implicit_instance_id,
        )

        record = self.trace.record
        current = self._recorder._current
        for kind, thread_id, region, time, instance, payload in batch.rows():
            if kind == K_ENTER:
                record(
                    EnterEvent(thread_id, time, current[thread_id], region, payload)
                )
            elif kind == K_EXIT:
                record(ExitEvent(thread_id, time, current[thread_id], region))
            elif kind == K_TASK_BEGIN:
                current[thread_id] = instance
                record(
                    TaskBeginEvent(
                        thread_id, time, instance, region, instance, payload
                    )
                )
            elif kind == K_TASK_END:
                record(TaskEndEvent(thread_id, time, instance, region, instance))
                current[thread_id] = implicit_instance_id(thread_id)
            elif kind == K_TASK_SWITCH:
                current[thread_id] = instance
                record(TaskSwitchEvent(thread_id, time, instance, instance))
            # metrics live in the profile, not the event trace

    def artifact(self) -> Optional[ProgramTrace]:
        return self.trace
