"""The profiling substrate: the paper's Fig. 12 profiler as a substrate.

Wraps :class:`~repro.profiling.task_profiler.TaskProfiler`.  At
:meth:`initialize` the freshly-built profiler's bound listener methods
are shadowed onto the substrate instance, so the manager's fan-out calls
land directly on the profiler -- no per-event indirection, and the event
sequence the profiler sees is byte-for-byte what it saw under the old
direct wiring (identical cube output).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SubstrateError
from repro.events.regions import Region, RegionRegistry
from repro.profiling.profile import Profile
from repro.profiling.task_profiler import TaskProfiler
from repro.substrates.base import Substrate


class ProfilingSubstrate(Substrate):
    """Task-aware call-path profiling (the run's ``profile`` artifact).

    Essential by default: a :class:`~repro.errors.ProfileError` from an
    inconsistent event stream aborts the run in strict mode, exactly as
    the directly-wired profiler always did.  Pass ``strict=False`` for
    the PR-1 lenient salvage mode instead.
    """

    name = "profiling"
    essential = True

    def __init__(
        self,
        max_call_path_depth: Optional[int] = None,
        strict: bool = True,
        per_event_cost: float = 0.0,
        governor=None,
    ) -> None:
        self.max_call_path_depth = max_call_path_depth
        self.strict = strict
        self.per_event_cost = per_event_cost
        #: armed :class:`~repro.governor.ResourceGovernor`; the runtime
        #: injects its own when a memory budget is configured
        self.governor = governor
        self.profiler: Optional[TaskProfiler] = None
        self._profile: Optional[Profile] = None

    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        if implicit_region is None:
            raise SubstrateError(
                "profiling substrate needs the run's implicit region handle"
            )
        profiler = TaskProfiler(
            n_threads,
            implicit_region,
            start_time=start_time,
            max_call_path_depth=self.max_call_path_depth,
            strict=self.strict,
            governor=self.governor,
        )
        self.profiler = profiler
        # Short-circuit dispatch: the profiler's (possibly salvage-mode)
        # bound methods become this substrate's callbacks.
        self.on_enter = profiler.on_enter
        self.on_exit = profiler.on_exit
        self.on_task_begin = profiler.on_task_begin
        self.on_task_end = profiler.on_task_end
        self.on_task_switch = profiler.on_task_switch
        self.on_metric = profiler.on_metric
        self.on_phase_begin = profiler.on_phase_begin
        self.on_phase_end = profiler.on_phase_end
        # Columnar fast path: the profiler decodes whole batches itself
        # (and internally falls back to the shadowed per-event handlers
        # in lenient/governed mode).
        self.on_batch = profiler.on_batch

    def finalize(self, time: float) -> None:
        if self.profiler is not None:
            self.profiler.on_finish(time)

    def artifact(self) -> Optional[Profile]:
        """The built :class:`~repro.profiling.profile.Profile` (cached)."""
        if self._profile is None and self.profiler is not None and self.profiler.finished:
            self._profile = self.profiler.build_profile()
        return self._profile
