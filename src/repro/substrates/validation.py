"""The online-validation substrate: stream checks *during* execution.

The post-hoc validators (:mod:`repro.events.validate`) need a recorded
trace; this substrate runs the same task-aware consistency rules
*streaming*, while the run executes, by feeding each event into a
per-thread :class:`~repro.events.validate.TaskStreamChecker` the moment
it is dispatched.  No trace is retained -- memory stays O(active
instances), which is exactly why real measurement systems validate
online instead of post-mortem.

Cross-thread rules mirror :func:`~repro.events.validate.collect_trace_violations`:
a live shared ``known_active`` set lets untied migration validate across
threads, per-thread timestamps must be monotone, and at :meth:`finalize`
every explicit instance must have exactly one TaskBegin and one TaskEnd
program-wide.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Set

from repro.events.batch import (
    K_ENTER,
    K_EXIT,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    EventBatch,
)
from repro.events.model import (
    EnterEvent,
    ExitEvent,
    TaskBeginEvent,
    TaskEndEvent,
    TaskSwitchEvent,
    implicit_instance_id,
)
from repro.events.regions import Region, RegionRegistry
from repro.events.validate import TaskStreamChecker, Violation
from repro.substrates.base import Substrate


class OnlineValidationSubstrate(Substrate):
    """Task-aware stream validation, online.  Artifact: a violations report.

    ``max_recorded`` bounds how many violations are *kept* (memory guard
    for a badly corrupted run); all of them are still counted per kind.
    """

    name = "validation"
    essential = False

    def __init__(self, max_recorded: int = 200, per_event_cost: float = 0.0) -> None:
        self.max_recorded = max_recorded
        self.per_event_cost = per_event_cost
        self.violations: List[Violation] = []
        self.violation_counts: Counter = Counter()
        self.events_checked = 0
        self._checkers: List[TaskStreamChecker] = []
        self._current: List[int] = []
        self._last_time: List[Optional[float]] = []
        self._begun: Dict[int, int] = {}
        self._ended: Dict[int, int] = {}
        self._known_active: Set[int] = set()
        self._finalized = False

    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        # tied=False with the live cross-thread known_active set: tied-ness
        # is not observable per stream once tasks may migrate, exactly as
        # in the post-hoc whole-trace validator.
        self._known_active = set()
        self._checkers = [
            TaskStreamChecker(thread_id=t, tied=False, known_active=self._known_active)
            for t in range(n_threads)
        ]
        self._current = [implicit_instance_id(t) for t in range(n_threads)]
        self._last_time = [None] * n_threads

    # ------------------------------------------------------------------
    def _note(self, violations: List[Violation]) -> None:
        for violation in violations:
            self.violation_counts[violation.kind] += 1
            if len(self.violations) < self.max_recorded:
                self.violations.append(violation)

    def _feed(self, thread_id: int, event) -> None:
        self.events_checked += 1
        checker = self._checkers[thread_id]
        last = self._last_time[thread_id]
        if last is not None and event.time < last:
            self._note(
                [
                    Violation(
                        checker.events_seen,
                        "time-order",
                        f"event #{checker.events_seen}: timestamp {event.time} "
                        f"precedes {last} on thread {thread_id}",
                    )
                ]
            )
        self._last_time[thread_id] = event.time
        self._note(checker.feed(event))

    # -- POMP2 callbacks ------------------------------------------------
    def on_enter(self, thread_id, region, time, parameter=None) -> None:
        self._feed(
            thread_id,
            EnterEvent(thread_id, time, self._current[thread_id], region, parameter),
        )

    def on_exit(self, thread_id, region, time) -> None:
        self._feed(
            thread_id, ExitEvent(thread_id, time, self._current[thread_id], region)
        )

    def on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        self._feed(
            thread_id,
            TaskBeginEvent(thread_id, time, instance, region, instance, parameter),
        )
        self._current[thread_id] = instance
        self._begun[instance] = self._begun.get(instance, 0) + 1
        self._known_active.add(instance)

    def on_task_end(self, thread_id, region, instance, time) -> None:
        self._feed(
            thread_id, TaskEndEvent(thread_id, time, instance, region, instance)
        )
        self._current[thread_id] = implicit_instance_id(thread_id)
        self._ended[instance] = self._ended.get(instance, 0) + 1

    def on_task_switch(self, thread_id, instance, time) -> None:
        self._feed(thread_id, TaskSwitchEvent(thread_id, time, instance, instance))
        self._current[thread_id] = instance

    def on_batch(self, batch: EventBatch) -> None:
        """Native batch consume: one decode loop feeding the checkers.

        Mirrors the per-event callbacks exactly (event construction,
        feed-then-bookkeeping ordering for ``_current`` / ``_begun`` /
        ``_ended`` / ``_known_active``), so the violation report is
        identical whichever dispatch path ran.
        """
        feed = self._feed
        current = self._current
        begun = self._begun
        ended = self._ended
        known_active = self._known_active
        for kind, thread_id, region, time, instance, payload in batch.rows():
            if kind == K_ENTER:
                feed(
                    thread_id,
                    EnterEvent(thread_id, time, current[thread_id], region, payload),
                )
            elif kind == K_EXIT:
                feed(
                    thread_id,
                    ExitEvent(thread_id, time, current[thread_id], region),
                )
            elif kind == K_TASK_BEGIN:
                feed(
                    thread_id,
                    TaskBeginEvent(
                        thread_id, time, instance, region, instance, payload
                    ),
                )
                current[thread_id] = instance
                begun[instance] = begun.get(instance, 0) + 1
                known_active.add(instance)
            elif kind == K_TASK_END:
                feed(
                    thread_id,
                    TaskEndEvent(thread_id, time, instance, region, instance),
                )
                current[thread_id] = implicit_instance_id(thread_id)
                ended[instance] = ended.get(instance, 0) + 1
            elif kind == K_TASK_SWITCH:
                feed(
                    thread_id,
                    TaskSwitchEvent(thread_id, time, instance, instance),
                )
                current[thread_id] = instance
            # metrics carry no task-consistency information

    # ------------------------------------------------------------------
    def finalize(self, time: float) -> None:
        """Cross-thread closure checks (begin/end counts program-wide)."""
        if self._finalized:
            return
        self._finalized = True
        for instance, count in self._begun.items():
            if count != 1:
                self._note(
                    [
                        Violation(
                            -1,
                            "begin-count",
                            f"instance {instance} has {count} TaskBegin events",
                        )
                    ]
                )
            ended = self._ended.get(instance, 0)
            if ended != 1:
                self._note(
                    [
                        Violation(
                            -1,
                            "end-count",
                            f"instance {instance} begun but ended {ended} times",
                        )
                    ]
                )
        extra = set(self._ended) - set(self._begun)
        if extra:
            self._note(
                [
                    Violation(
                        -1,
                        "end-without-begin",
                        f"TaskEnd without TaskBegin for instance(s) {sorted(extra)}",
                    )
                ]
            )

    @property
    def total_violations(self) -> int:
        return sum(self.violation_counts.values())

    @property
    def clean(self) -> bool:
        return self.total_violations == 0

    def artifact(self) -> dict:
        return {
            "events_checked": self.events_checked,
            "violations": self.total_violations,
            "by_kind": dict(sorted(self.violation_counts.items())),
            "first": [str(v) for v in self.violations[:20]],
            "clean": self.clean,
        }
