"""The statistics substrate: cheap per-type / per-thread event counts.

The lightest useful substrate: it keeps counters, nothing else.  Its
artifact feeds the overhead analysis
(:func:`repro.analysis.overhead.event_cost_attribution`): once you know
how many events of each kind each thread produced, a per-event cost
turns directly into an attributable per-kind / per-thread overhead
breakdown (paper Section V).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.events.batch import (
    K_ENTER,
    K_METRIC,
    KIND_MASK,
    RID_MASK,
    RID_SHIFT,
    TID_MASK,
    TID_SHIFT,
    EventBatch,
)
from repro.events.regions import Region, RegionRegistry
from repro.substrates.base import Substrate

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None


class StatsSubstrate(Substrate):
    """Counts events per kind, per thread, and enters per region type."""

    name = "stats"
    essential = False

    def __init__(self, per_event_cost: float = 0.0) -> None:
        self.per_event_cost = per_event_cost
        self.n_threads = 0
        self.per_thread: List[int] = []
        self.per_kind: Dict[str, int] = {
            "enter": 0,
            "exit": 0,
            "task_begin": 0,
            "task_end": 0,
            "task_switch": 0,
            "metric": 0,
        }
        #: enter events per region type (the exit mirrors the enter, so
        #: counting one side keeps region visits un-double-counted)
        self.per_region_type: Dict[str, int] = {}

    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        self.n_threads = n_threads
        self.per_thread = [0] * n_threads

    # -- POMP2 callbacks ------------------------------------------------
    def on_enter(self, thread_id, region, time, parameter=None) -> None:
        self.per_thread[thread_id] += 1
        self.per_kind["enter"] += 1
        rtype = region.region_type.value
        self.per_region_type[rtype] = self.per_region_type.get(rtype, 0) + 1

    def on_exit(self, thread_id, region, time) -> None:
        self.per_thread[thread_id] += 1
        self.per_kind["exit"] += 1

    def on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        self.per_thread[thread_id] += 1
        self.per_kind["task_begin"] += 1

    def on_task_end(self, thread_id, region, instance, time) -> None:
        self.per_thread[thread_id] += 1
        self.per_kind["task_end"] += 1

    def on_task_switch(self, thread_id, instance, time) -> None:
        self.per_thread[thread_id] += 1
        self.per_kind["task_switch"] += 1

    def on_metric(self, thread_id, counters, time) -> None:
        # Metrics piggyback on an existing event boundary (no cost, not
        # counted in total_events) but are still interesting traffic.
        self.per_kind["metric"] += 1

    def on_batch(self, batch: EventBatch) -> None:
        """Native batch consume: pure column arithmetic, no per-event work.

        One ``bincount`` over the kind bits, one over the thread bits
        (metric rows excluded -- the legacy callbacks never counted them
        per thread), and a unique-count over the enters' region ids.
        Falls back to the per-event replay shim without numpy.
        """
        if _np is None:
            return super().on_batch(batch)
        cd = _np.frombuffer(batch.codes, dtype=_np.int64)
        kinds = cd & KIND_MASK
        kind_counts = _np.bincount(kinds, minlength=K_METRIC + 1)
        per_kind = self.per_kind
        for kind, key in enumerate(
            ("enter", "exit", "task_begin", "task_end", "task_switch", "metric")
        ):
            per_kind[key] += int(kind_counts[kind])
        non_metric = kinds != K_METRIC
        tids = (cd >> TID_SHIFT) & TID_MASK
        thread_counts = _np.bincount(
            tids[non_metric], minlength=len(self.per_thread)
        )
        per_thread = self.per_thread
        for t, count in enumerate(thread_counts.tolist()):
            per_thread[t] += count
        enters = cd[kinds == K_ENTER]
        if enters.size:
            rids, counts = _np.unique(
                (enters >> RID_SHIFT) & RID_MASK, return_counts=True
            )
            lookup = batch.registry.lookup
            per_region_type = self.per_region_type
            for rid, count in zip(rids.tolist(), counts.tolist()):
                rtype = lookup(rid).region_type.value
                per_region_type[rtype] = per_region_type.get(rtype, 0) + count

    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        """Cost-bearing events (everything except piggybacked metrics)."""
        return sum(
            count for kind, count in self.per_kind.items() if kind != "metric"
        )

    def artifact(self) -> dict:
        return {
            "total_events": self.total_events,
            "per_thread": list(self.per_thread),
            "per_kind": dict(self.per_kind),
            "per_region_type": dict(sorted(self.per_region_type.items())),
        }
