"""Reporting substrate for the resource governor.

The governor itself hooks the runtime (admission) and the task profiler
(ladder actions); this substrate is its *reporting* face: it implements
no event callbacks -- the manager's dispatch tables therefore never route
events to it, so it adds zero per-event overhead -- and its artifact is
the governor's final report (ladder level reached, pressure incidents,
stub accounting).  The runtime attaches one automatically whenever a
memory budget is armed; listing ``"governor"`` in
``RuntimeConfig.substrates`` attaches it explicitly (it then reports
``{"enabled": False}`` if no budget was configured).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.events.regions import Region, RegionRegistry
from repro.substrates.base import Substrate


class GovernorSubstrate(Substrate):
    """Surfaces the resource governor's ladder state as a run artifact.

    Overrides no event callbacks, so the manager's batched dispatch
    never routes :class:`~repro.events.batch.EventBatch` flushes here --
    it is a pure artifact carrier on both the legacy and columnar paths.
    """

    name = "governor"
    essential = False
    per_event_cost = 0.0

    def __init__(self, governor=None) -> None:
        #: the armed :class:`~repro.governor.ResourceGovernor`; injected
        #: by the runtime when a memory budget is configured
        self.governor = governor

    def initialize(
        self,
        registry: RegionRegistry,
        n_threads: int,
        start_time: float,
        implicit_region: Optional[Region] = None,
    ) -> None:
        pass

    def finalize(self, time: float) -> None:
        pass

    def artifact(self) -> Any:
        if self.governor is None:
            return {"enabled": False}
        report = self.governor.report()
        report["enabled"] = True
        return report
