"""Pluggable measurement substrates (the Score-P substrate architecture).

Score-P decouples event *production* from event *consumption*: every
measurement event is routed to a set of pluggable substrates -- the
profiling substrate, the tracing substrate, plugin substrates.  This
subpackage reproduces that architecture for the simulated runtime:

* :class:`~repro.substrates.base.Substrate` -- the lifecycle contract
  (``initialize`` / POMP2 event callbacks / ``finalize`` / ``artifact``),
  plus per-substrate ``per_event_cost`` (attributable overhead, paper
  Section V) and an ``essential`` flag (non-essential substrates are
  quarantined on error instead of killing the run).
* :class:`~repro.substrates.manager.SubstrateManager` -- the single
  listener the instrumentation layer dispatches to; fans out to every
  attached substrate and does the quarantine/overhead bookkeeping.
* the registry (:func:`register_substrate` / :func:`get_substrate`) --
  string-keyed factories so configs, the CLI (``repro run --substrate
  NAME``) and third-party code can attach substrates by name.

Built-ins: ``profiling`` (the paper's Fig. 12 profiler), ``tracing``
(full event recording), ``validation`` (the task-aware stream checks
running online, during execution), ``stats`` (per-kind/per-thread event
counts feeding the overhead analysis), ``governor`` (resource-governor
ladder report; see :mod:`repro.governor`).
"""

from repro.substrates.base import Substrate
from repro.substrates.governor import GovernorSubstrate
from repro.substrates.manager import SubstrateIncident, SubstrateManager
from repro.substrates.profiling import ProfilingSubstrate
from repro.substrates.recorder import RecorderSubstrate
from repro.substrates.registry import (
    available_substrates,
    get_substrate,
    register_substrate,
    unregister_substrate,
)
from repro.substrates.stats import StatsSubstrate
from repro.substrates.tracing import TracingSubstrate
from repro.substrates.validation import OnlineValidationSubstrate

# replace=True keeps module re-imports (importlib.reload in tests) benign.
register_substrate("profiling", ProfilingSubstrate, replace=True)
register_substrate("tracing", TracingSubstrate, replace=True)
register_substrate("validation", OnlineValidationSubstrate, replace=True)
register_substrate("stats", StatsSubstrate, replace=True)
register_substrate("governor", GovernorSubstrate, replace=True)
register_substrate("recorder", RecorderSubstrate, replace=True)

__all__ = [
    "Substrate",
    "SubstrateManager",
    "SubstrateIncident",
    "ProfilingSubstrate",
    "TracingSubstrate",
    "GovernorSubstrate",
    "RecorderSubstrate",
    "OnlineValidationSubstrate",
    "StatsSubstrate",
    "register_substrate",
    "unregister_substrate",
    "get_substrate",
    "available_substrates",
]
