"""String-keyed substrate registry.

Third-party substrates plug into a run without touching the runtime:
register a factory under a name, then put the name into
``RuntimeConfig(substrates=[...])`` or pass it to
``repro run --substrate NAME``.  The four built-ins (``profiling``,
``tracing``, ``validation``, ``stats``) are registered when
:mod:`repro.substrates` is imported.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, List

from repro.errors import SubstrateError
from repro.substrates.base import Substrate

_FACTORIES: Dict[str, Callable[..., Substrate]] = {}


def register_substrate(
    name: str, factory: Callable[..., Substrate], *, replace: bool = False
) -> None:
    """Register ``factory`` (class or callable) under ``name``.

    The factory is called with the keyword arguments passed to
    :func:`get_substrate` and must return a :class:`Substrate`.  A second
    registration of the same name raises unless ``replace=True``.
    """
    if not callable(factory):
        raise TypeError(f"substrate factory for {name!r} is not callable: {factory!r}")
    if name in _FACTORIES and not replace:
        raise SubstrateError(
            f"substrate {name!r} is already registered (pass replace=True to override)"
        )
    _FACTORIES[name] = factory


def unregister_substrate(name: str) -> None:
    """Remove a registration (mainly for tests); unknown names are ignored."""
    _FACTORIES.pop(name, None)


def get_substrate(name: str, **kwargs) -> Substrate:
    """Instantiate the substrate registered under ``name``.

    Raises :class:`~repro.errors.SubstrateError` with a did-you-mean
    suggestion for unknown names.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        suggestion = ""
        close = difflib.get_close_matches(name, _FACTORIES, n=1)
        if close:
            suggestion = f" -- did you mean {close[0]!r}?"
        raise SubstrateError(
            f"unknown substrate {name!r}{suggestion} "
            f"(available: {', '.join(available_substrates())})"
        )
    substrate = factory(**kwargs)
    if not isinstance(substrate, Substrate):
        raise SubstrateError(
            f"factory for {name!r} returned {type(substrate).__name__}, "
            "not a Substrate"
        )
    return substrate


def available_substrates() -> List[str]:
    """Sorted names of all registered substrates."""
    return sorted(_FACTORIES)
