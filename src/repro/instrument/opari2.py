"""OPARI2-style source-to-source translation of pragma-annotated Python.

OPARI2 rewrites C/Fortran sources, turning ``#pragma omp`` constructs
into runtime + measurement calls.  This module is the Python analogue:
it takes source where OpenMP-style *pragma comments* annotate plain
sequential statements and rewrites the functions into the generator-based
task programs the simulated runtime executes -- inserting the spawn/
taskwait/critical plumbing (and thereby the instrumentation hooks) the
same way OPARI2 inserts POMP2 calls.

Supported pragmas (each on its own comment line)::

    #pragma omp task        -- the next statement, `x = f(...)` or `f(...)`,
                               becomes an explicit task; `x` is bound at
                               the next taskwait
    #pragma omp taskwait    -- wait for direct children; pending task
                               results are materialized here
    #pragma omp taskyield   -- scheduling point
    #pragma omp barrier     -- team barrier
    #pragma omp single      -- the next statement executes on one thread
    #pragma omp critical(name) -- the next statement runs in the named
                               critical section

Additionally, ``omp_compute(us)`` calls charge virtual work time, and
calls between translated functions execute inline (``yield from``), so
cut-off recursion works untouched.

Like OPARI2, the transformation is *syntactic*: it does not do dataflow
analysis.  Reading a task-assigned variable before the taskwait that
materializes it raises ``NameError`` at run time -- the closest Python
analogue of the data race the equivalent OpenMP program would have.

Example::

    SOURCE = '''
    def fib(n):
        if n < 2:
            omp_compute(1.0)
            return n
        #pragma omp task
        a = fib(n - 1)
        #pragma omp task
        b = fib(n - 2)
        #pragma omp taskwait
        omp_compute(0.5)
        return a + b
    '''
    fns = translate_tasking(SOURCE)
    result = run_translated(fns, "fib", (10,), config)
"""

from __future__ import annotations

import ast
import re
import textwrap
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import InstrumentationError

#: marker call the preprocessor turns pragma comments into
_MARKER = "__omp_pragma__"

_PRAGMA_RE = re.compile(r"^(\s*)#\s*pragma\s+omp\s+(.+?)\s*$")
_CRITICAL_RE = re.compile(r"^critical\s*\(\s*(\w+)\s*\)$")

#: name of the virtual-work intrinsic
COMPUTE_INTRINSIC = "omp_compute"


def _preprocess(source: str) -> str:
    """Turn ``#pragma omp X`` comment lines into marker statements."""
    out_lines = []
    for line in textwrap.dedent(source).splitlines():
        match = _PRAGMA_RE.match(line)
        if match:
            indent, directive = match.groups()
            out_lines.append(f"{indent}{_MARKER}({directive!r})")
        else:
            out_lines.append(line)
    return "\n".join(out_lines) + "\n"


def _pragma_of(node: ast.stmt) -> Optional[str]:
    if (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Name)
        and node.value.func.id == _MARKER
        and node.value.args
        and isinstance(node.value.args[0], ast.Constant)
    ):
        return node.value.args[0].value
    return None


class _HasYield(ast.NodeVisitor):
    def __init__(self) -> None:
        self.found = False

    def visit_Yield(self, node):  # noqa: N802
        self.found = True

    def visit_YieldFrom(self, node):  # noqa: N802
        self.found = True

    def visit_FunctionDef(self, node):  # noqa: N802
        pass  # do not descend into nested defs

    def visit_Lambda(self, node):  # noqa: N802
        pass


class _CallRewriter(ast.NodeTransformer):
    """Rewrites calls in ordinary expressions.

    * ``omp_compute(us)``            -> ``(yield ctx.compute(us))``
    * call to a translated function  -> ``(yield from f(ctx, ...))``
    """

    def __init__(self, translated_names: set) -> None:
        self.translated = translated_names

    def visit_FunctionDef(self, node):  # noqa: N802
        return node  # nested defs are out of scope

    def visit_Lambda(self, node):  # noqa: N802
        return node

    def visit_Call(self, node: ast.Call):  # noqa: N802
        self.generic_visit(node)
        if isinstance(node.func, ast.Name):
            if node.func.id == COMPUTE_INTRINSIC:
                compute = ast.Call(
                    func=ast.Attribute(
                        value=ast.Name("ctx", ast.Load()), attr="compute", ctx=ast.Load()
                    ),
                    args=node.args,
                    keywords=node.keywords,
                )
                return ast.Yield(value=compute)
            if node.func.id in self.translated:
                inlined = ast.Call(
                    func=node.func,
                    args=[ast.Name("ctx", ast.Load())] + node.args,
                    keywords=node.keywords,
                )
                return ast.YieldFrom(value=inlined)
        return node


class _FunctionTranslator:
    """Translates one function body, consuming pragma markers."""

    def __init__(self, translated_names: set, fn_name: str) -> None:
        self.translated = translated_names
        self.fn_name = fn_name
        self.call_rewriter = _CallRewriter(translated_names)
        self._handle_counter = 0
        #: (variable name, handle temp name) pending materialization
        self.pending: List[Tuple[str, str]] = []

    # -- helpers ----------------------------------------------------------
    def _fresh_handle(self) -> str:
        self._handle_counter += 1
        return f"__omp_handle_{self._handle_counter}"

    @staticmethod
    def _ctx_yield(method: str, *args: ast.expr) -> ast.Expr:
        call = ast.Call(
            func=ast.Attribute(
                value=ast.Name("ctx", ast.Load()), attr=method, ctx=ast.Load()
            ),
            args=list(args),
            keywords=[],
        )
        return ast.Expr(value=ast.Yield(value=call))

    def _spawn_stmt(self, target: Optional[str], call: ast.Call) -> List[ast.stmt]:
        if not isinstance(call.func, ast.Name):
            raise InstrumentationError(
                f"{self.fn_name}: '#pragma omp task' target must call a "
                "plain function name"
            )
        callee = call.func.id
        if callee not in self.translated:
            raise InstrumentationError(
                f"{self.fn_name}: task target {callee!r} is not a function "
                "of this translation unit"
            )
        rewritten_args = [self.call_rewriter.visit(a) for a in call.args]
        spawn = ast.Call(
            func=ast.Attribute(
                value=ast.Name("ctx", ast.Load()), attr="spawn", ctx=ast.Load()
            ),
            args=[ast.Name(callee, ast.Load())] + rewritten_args,
            keywords=[self.call_rewriter.visit(k) for k in call.keywords],
        )
        yielded = ast.Yield(value=spawn)
        if target is None:
            return [ast.Expr(value=yielded)]
        handle = self._fresh_handle()
        self.pending.append((target, handle))
        return [ast.Assign(targets=[ast.Name(handle, ast.Store())], value=yielded)]

    def _materialize(self) -> List[ast.stmt]:
        stmts = []
        for variable, handle in self.pending:
            stmts.append(
                ast.Assign(
                    targets=[ast.Name(variable, ast.Store())],
                    value=ast.Attribute(
                        value=ast.Name(handle, ast.Load()),
                        attr="result",
                        ctx=ast.Load(),
                    ),
                )
            )
        self.pending.clear()
        return stmts

    # -- body translation ---------------------------------------------------
    def translate_body(self, body: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        i = 0
        while i < len(body):
            stmt = body[i]
            pragma = _pragma_of(stmt)
            if pragma is None:
                out.append(self._translate_plain(stmt))
                i += 1
                continue

            if pragma == "task":
                if i + 1 >= len(body):
                    raise InstrumentationError(
                        f"{self.fn_name}: '#pragma omp task' at end of block"
                    )
                nxt = body[i + 1]
                if (
                    isinstance(nxt, ast.Assign)
                    and len(nxt.targets) == 1
                    and isinstance(nxt.targets[0], ast.Name)
                    and isinstance(nxt.value, ast.Call)
                ):
                    out.extend(self._spawn_stmt(nxt.targets[0].id, nxt.value))
                elif isinstance(nxt, ast.Expr) and isinstance(nxt.value, ast.Call):
                    out.extend(self._spawn_stmt(None, nxt.value))
                else:
                    raise InstrumentationError(
                        f"{self.fn_name}: '#pragma omp task' must precede "
                        "`x = f(...)` or `f(...)`"
                    )
                i += 2
            elif pragma == "taskwait":
                out.append(self._ctx_yield("taskwait"))
                out.extend(self._materialize())
                i += 1
            elif pragma == "taskyield":
                out.append(self._ctx_yield("taskyield"))
                i += 1
            elif pragma == "barrier":
                out.append(self._ctx_yield("barrier"))
                i += 1
            elif pragma == "single":
                if i + 1 >= len(body):
                    raise InstrumentationError(
                        f"{self.fn_name}: '#pragma omp single' at end of block"
                    )
                guarded = self._translate_plain(body[i + 1])
                test = ast.Yield(
                    value=ast.Call(
                        func=ast.Attribute(
                            value=ast.Name("ctx", ast.Load()),
                            attr="single",
                            ctx=ast.Load(),
                        ),
                        args=[],
                        keywords=[],
                    )
                )
                out.append(ast.If(test=test, body=[guarded], orelse=[]))
                i += 2
            else:
                critical = _CRITICAL_RE.match(pragma)
                if critical:
                    if i + 1 >= len(body):
                        raise InstrumentationError(
                            f"{self.fn_name}: critical pragma at end of block"
                        )
                    name = ast.Constant(critical.group(1))
                    out.append(self._ctx_yield("critical", name))
                    out.append(self._translate_plain(body[i + 1]))
                    out.append(self._ctx_yield("end_critical", name))
                    i += 2
                else:
                    raise InstrumentationError(
                        f"{self.fn_name}: unsupported pragma 'omp {pragma}'"
                    )
        return out

    def _translate_plain(self, stmt: ast.stmt) -> ast.stmt:
        """Recurse into compound statements; rewrite calls everywhere."""
        if isinstance(stmt, (ast.If, ast.While)):
            stmt.test = self.call_rewriter.visit(stmt.test)
            stmt.body = self.translate_body(stmt.body)
            stmt.orelse = self.translate_body(stmt.orelse)
            return stmt
        if isinstance(stmt, ast.For):
            stmt.iter = self.call_rewriter.visit(stmt.iter)
            stmt.body = self.translate_body(stmt.body)
            stmt.orelse = self.translate_body(stmt.orelse)
            return stmt
        if isinstance(stmt, (ast.With,)):
            stmt.body = self.translate_body(stmt.body)
            return stmt
        if isinstance(stmt, ast.FunctionDef):
            raise InstrumentationError(
                f"{self.fn_name}: nested function definitions are not supported"
            )
        return self.call_rewriter.visit(stmt)


def translate_tasking(source: str) -> Dict[str, Any]:
    """Translate a whole source unit; returns {name: generator function}.

    Every top-level function of the unit is translated (it gains a
    leading ``ctx`` parameter and becomes a generator), mirroring how
    OPARI2 processes a full compilation unit.
    """
    preprocessed = _preprocess(source)
    try:
        module = ast.parse(preprocessed)
    except SyntaxError as exc:
        raise InstrumentationError(f"cannot parse source: {exc}") from exc

    functions = [n for n in module.body if isinstance(n, ast.FunctionDef)]
    if not functions:
        raise InstrumentationError("translation unit contains no functions")
    translated_names = {fn.name for fn in functions}

    for fn in functions:
        translator = _FunctionTranslator(translated_names, fn.name)
        fn.body = translator.translate_body(fn.body)
        fn.args.args.insert(0, ast.arg(arg="ctx"))
        checker = _HasYield()
        for stmt in fn.body:
            checker.visit(stmt)
        if not checker.found:
            # Guarantee generator-ness so `yield from` composition works.
            fn.body.insert(
                0,
                ast.If(
                    test=ast.Constant(False),
                    body=[ast.Expr(value=ast.Yield(value=ast.Constant(None)))],
                    orelse=[],
                ),
            )

    ast.fix_missing_locations(module)
    namespace: Dict[str, Any] = {}
    exec(compile(module, "<omp-translated>", "exec"), namespace)
    return {name: namespace[name] for name in translated_names}


def run_translated(
    functions: Dict[str, Any],
    entry: str,
    args: tuple = (),
    config=None,
    name: Optional[str] = None,
    mode: str = "single_producer",
):
    """Run a translated function in a parallel region.

    ``mode='single_producer'`` (default) spawns ``entry`` as the root
    task of a single-producer region -- the BOTS shape; the entry may use
    task pragmas but not barriers.  ``mode='spmd'`` makes ``entry`` the
    region body itself: every team thread executes it, so single/barrier
    pragmas are legal (the `#pragma omp parallel` analogue).

    Returns the :class:`~repro.runtime.runtime.ParallelResult`.
    """
    from repro.bots.common import single_producer_region
    from repro.runtime.runtime import run_parallel

    if entry not in functions:
        raise KeyError(f"no translated function {entry!r}; have {sorted(functions)}")
    if mode == "single_producer":
        body = single_producer_region(functions[entry], *args)
    elif mode == "spmd":
        body = functions[entry]
        return run_parallel(body, *args, config=config, name=name or f"omp:{entry}")
    else:
        raise ValueError(f"unknown mode {mode!r}; use 'single_producer' or 'spmd'")
    return run_parallel(body, config=config, name=name or f"omp:{entry}")
