"""The instrumentation layer between runtime and measurement system.

Every measurement event passes through here.  When instrumentation is
*enabled*, each event charges :attr:`per_event_cost` virtual µs to the
executing thread (the runtime yields that cost as a timeout *before*
dispatching, so the event timestamp reflects the time after paying for
instrumentation -- the same thing that happens on real hardware when the
POMP2 calls execute).  When *disabled*, dispatch is a no-op and the cost
is zero: that is the "uninstrumented" baseline of the paper's Section V.

The layer is where the paper's central overhead mechanism lives: for tiny
tasks the per-event cost dominates the task body (fib: 310 % / 527 %
overhead); with many threads the runtime's own lock contention dominates
instead, and the instrumentation cost -- paid *outside* the lock --
"is shadowed" (Section V-A).
"""

from __future__ import annotations

from typing import Optional

from repro.events.batch import (
    F_PAYLOAD,
    K_ENTER,
    K_EXIT,
    K_METRIC,
    K_TASK_BEGIN,
    K_TASK_END,
    K_TASK_SWITCH,
    RID_SHIFT,
    TID_SHIFT,
    EventBatch,
    zigzag,
)
from repro.events.model import InstanceId
from repro.events.regions import Region
from repro.instrument.pomp2 import MulticastListener, NullListener, Pomp2Listener


class InstrumentationLayer:
    """Charges instrumentation cost and forwards events to the listener."""

    __slots__ = ("enabled", "per_event_cost", "listener", "events_dispatched", "filter")

    def __init__(
        self,
        enabled: bool = True,
        per_event_cost: float = 0.0,
        listener: Optional[Pomp2Listener] = None,
        region_filter=None,
    ) -> None:
        self.enabled = enabled
        #: configured per-event cost; the *effective* cost additionally
        #: depends on ``enabled`` (see :attr:`cost`), so toggling
        #: ``enabled`` after construction behaves correctly.
        self.per_event_cost = per_event_cost
        self.listener: Pomp2Listener = listener if listener is not None else NullListener()
        #: total events forwarded (statistics for the overhead analysis)
        self.events_dispatched = 0
        #: optional RegionFilter suppressing enter/exit events (Score-P
        #: filtering); task lifecycle events are never filtered
        self.filter = region_filter

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Virtual µs the executing thread pays per event (0 if disabled)."""
        return self.per_event_cost if self.enabled else 0.0

    def region_cost(self, region: Region) -> float:
        """Per-event cost for a region event, honoring the filter."""
        if not self.enabled or self.per_event_cost == 0.0:
            return 0.0
        if self.filter is not None and not self.filter.measures(region):
            return 0.0
        return self.per_event_cost

    def add_listener(self, listener: Pomp2Listener) -> None:
        """Attach an extra listener (wraps into a multicast on demand)."""
        if isinstance(self.listener, NullListener):
            self.listener = listener
        elif isinstance(self.listener, MulticastListener):
            self.listener.add(listener)
        else:
            self.listener = MulticastListener([self.listener, listener])

    # ------------------------------------------------------------------
    # Dispatch (no-ops when disabled)
    # ------------------------------------------------------------------
    def enter(
        self, thread_id: int, region: Region, time: float, parameter: Optional[tuple] = None
    ) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        self.listener.on_enter(thread_id, region, time, parameter)

    def exit(self, thread_id: int, region: Region, time: float) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        self.listener.on_exit(thread_id, region, time)

    def task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_begin(thread_id, region, instance, time, parameter)

    def task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_end(thread_id, region, instance, time)

    def task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_switch(thread_id, instance, time)

    def metric(self, thread_id: int, counters: dict, time: float) -> None:
        """Custom counters; piggy-backs on an existing event boundary, so
        it adds no extra per-event cost of its own."""
        if not self.enabled:
            return
        self.listener.on_metric(thread_id, counters, time)

    def phase_begin(self, name: str) -> None:
        if self.enabled:
            self.listener.on_phase_begin(name)

    def phase_end(self, name: str) -> None:
        if self.enabled:
            self.listener.on_phase_end(name)

    def finish(self, time: float) -> None:
        if self.enabled:
            self.listener.on_finish(time)

    # ------------------------------------------------------------------
    # Batch protocol stubs (no-ops on the legacy per-event layer, so the
    # runtime can call them unconditionally at scheduling points)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        pass

    def sched_point(self) -> None:
        pass


class BatchedInstrumentationLayer(InstrumentationLayer):
    """Columnar-fill variant: events append to an :class:`EventBatch`.

    Instead of forwarding every event as a listener method call, this
    layer packs it into the batch's two flat columns (one int append,
    one float append) and defers dispatch until :meth:`flush` hands the
    whole batch to ``listener.on_batch`` -- the listener must therefore
    implement the batch protocol (the
    :class:`~repro.substrates.manager.SubstrateManager` does).

    Flush boundaries:

    * **scheduling points** -- once the batch passes ``flush_threshold``
      it drains at the next task-scheduling point (task begin/end/
      switch, or a scheduling-point region enter; the runtime also calls
      :meth:`sched_point` at taskwait/taskyield/barrier/spawn).  Task
      scheduling decisions made by consumers (the governor's gauges, the
      profiler's concurrency tracker) therefore never see state older
      than the current batch.
    * **hard capacity** -- at ``capacity`` events the batch drains
      wherever it is, bounding memory.
    * **structural boundaries** -- phase begin/end and finish always
      flush first, so phase markers and finalization observe a fully
      drained stream.

    ``events_dispatched`` counts *individual events*, exactly as the
    per-event layer does -- batching changes when events are consumed,
    never how many were measured.
    """

    __slots__ = ("batch", "flush_threshold", "capacity")

    def __init__(
        self,
        enabled: bool = True,
        per_event_cost: float = 0.0,
        listener: Optional[Pomp2Listener] = None,
        region_filter=None,
        *,
        registry=None,
        flush_threshold: int = 1024,
        capacity: int = 8192,
    ) -> None:
        super().__init__(enabled, per_event_cost, listener, region_filter)
        if flush_threshold < 1 or capacity < flush_threshold:
            raise ValueError(
                "need 1 <= flush_threshold <= capacity, got "
                f"flush_threshold={flush_threshold} capacity={capacity}"
            )
        self.batch = EventBatch(registry)
        self.flush_threshold = flush_threshold
        self.capacity = capacity

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Hand the filled batch to the listener, then reset it in place."""
        batch = self.batch
        if batch.codes:
            self.listener.on_batch(batch)
            batch.clear()

    def sched_point(self) -> None:
        """Scheduling-point hook: drain if past the soft threshold."""
        if len(self.batch.codes) >= self.flush_threshold:
            self.flush()

    # ------------------------------------------------------------------
    # Columnar fill (overrides the forwarding dispatch methods)
    # ------------------------------------------------------------------
    def enter(
        self, thread_id: int, region: Region, time: float, parameter: Optional[tuple] = None
    ) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        batch = self.batch
        code = K_ENTER | (thread_id << TID_SHIFT) | (region.handle << RID_SHIFT)
        if parameter is not None:
            batch.payloads[len(batch.codes)] = parameter
            code |= F_PAYLOAD
        batch.codes.append(code)
        batch.times.append(time)
        batch.counted += 1
        n = len(batch.codes)
        if n >= self.capacity or (
            n >= self.flush_threshold and region.is_scheduling_point
        ):
            self.flush()

    def exit(self, thread_id: int, region: Region, time: float) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        batch = self.batch
        batch.codes.append(
            K_EXIT | (thread_id << TID_SHIFT) | (region.handle << RID_SHIFT)
        )
        batch.times.append(time)
        batch.counted += 1
        if len(batch.codes) >= self.capacity:
            self.flush()

    def task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        batch = self.batch
        code = (
            K_TASK_BEGIN
            | (thread_id << TID_SHIFT)
            | (region.handle << RID_SHIFT)
            | (zigzag(instance) << 34)
        )
        if parameter is not None:
            batch.payloads[len(batch.codes)] = parameter
            code |= F_PAYLOAD
        batch.codes.append(code)
        batch.times.append(time)
        batch.counted += 1
        # task begin is a scheduling boundary: soft-drain here
        if len(batch.codes) >= self.flush_threshold:
            self.flush()

    def task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        batch = self.batch
        batch.codes.append(
            K_TASK_END
            | (thread_id << TID_SHIFT)
            | (region.handle << RID_SHIFT)
            | (zigzag(instance) << 34)
        )
        batch.times.append(time)
        batch.counted += 1
        # task completion is a scheduling point
        if len(batch.codes) >= self.flush_threshold:
            self.flush()

    def task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        batch = self.batch
        batch.codes.append(
            K_TASK_SWITCH | (thread_id << TID_SHIFT) | (zigzag(instance) << 34)
        )
        batch.times.append(time)
        batch.counted += 1
        if len(batch.codes) >= self.flush_threshold:
            self.flush()

    def metric(self, thread_id: int, counters: dict, time: float) -> None:
        if not self.enabled:
            return
        batch = self.batch
        batch.payloads[len(batch.codes)] = counters
        batch.codes.append(K_METRIC | (thread_id << TID_SHIFT) | F_PAYLOAD)
        batch.times.append(time)
        if len(batch.codes) >= self.capacity:
            self.flush()

    def phase_begin(self, name: str) -> None:
        if self.enabled:
            self.flush()
            self.listener.on_phase_begin(name)

    def phase_end(self, name: str) -> None:
        if self.enabled:
            self.flush()
            self.listener.on_phase_end(name)

    def finish(self, time: float) -> None:
        if self.enabled:
            self.flush()
            self.listener.on_finish(time)
