"""The instrumentation layer between runtime and measurement system.

Every measurement event passes through here.  When instrumentation is
*enabled*, each event charges :attr:`per_event_cost` virtual µs to the
executing thread (the runtime yields that cost as a timeout *before*
dispatching, so the event timestamp reflects the time after paying for
instrumentation -- the same thing that happens on real hardware when the
POMP2 calls execute).  When *disabled*, dispatch is a no-op and the cost
is zero: that is the "uninstrumented" baseline of the paper's Section V.

The layer is where the paper's central overhead mechanism lives: for tiny
tasks the per-event cost dominates the task body (fib: 310 % / 527 %
overhead); with many threads the runtime's own lock contention dominates
instead, and the instrumentation cost -- paid *outside* the lock --
"is shadowed" (Section V-A).
"""

from __future__ import annotations

from typing import Optional

from repro.events.model import InstanceId
from repro.events.regions import Region
from repro.instrument.pomp2 import MulticastListener, NullListener, Pomp2Listener


class InstrumentationLayer:
    """Charges instrumentation cost and forwards events to the listener."""

    __slots__ = ("enabled", "per_event_cost", "listener", "events_dispatched", "filter")

    def __init__(
        self,
        enabled: bool = True,
        per_event_cost: float = 0.0,
        listener: Optional[Pomp2Listener] = None,
        region_filter=None,
    ) -> None:
        self.enabled = enabled
        #: configured per-event cost; the *effective* cost additionally
        #: depends on ``enabled`` (see :attr:`cost`), so toggling
        #: ``enabled`` after construction behaves correctly.
        self.per_event_cost = per_event_cost
        self.listener: Pomp2Listener = listener if listener is not None else NullListener()
        #: total events forwarded (statistics for the overhead analysis)
        self.events_dispatched = 0
        #: optional RegionFilter suppressing enter/exit events (Score-P
        #: filtering); task lifecycle events are never filtered
        self.filter = region_filter

    # ------------------------------------------------------------------
    @property
    def cost(self) -> float:
        """Virtual µs the executing thread pays per event (0 if disabled)."""
        return self.per_event_cost if self.enabled else 0.0

    def region_cost(self, region: Region) -> float:
        """Per-event cost for a region event, honoring the filter."""
        if not self.enabled or self.per_event_cost == 0.0:
            return 0.0
        if self.filter is not None and not self.filter.measures(region):
            return 0.0
        return self.per_event_cost

    def add_listener(self, listener: Pomp2Listener) -> None:
        """Attach an extra listener (wraps into a multicast on demand)."""
        if isinstance(self.listener, NullListener):
            self.listener = listener
        elif isinstance(self.listener, MulticastListener):
            self.listener.add(listener)
        else:
            self.listener = MulticastListener([self.listener, listener])

    # ------------------------------------------------------------------
    # Dispatch (no-ops when disabled)
    # ------------------------------------------------------------------
    def enter(
        self, thread_id: int, region: Region, time: float, parameter: Optional[tuple] = None
    ) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        self.listener.on_enter(thread_id, region, time, parameter)

    def exit(self, thread_id: int, region: Region, time: float) -> None:
        if not self.enabled:
            return
        if self.filter is not None and not self.filter.measures(region):
            self.filter.note_suppressed()
            return
        self.events_dispatched += 1
        self.listener.on_exit(thread_id, region, time)

    def task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_begin(thread_id, region, instance, time, parameter)

    def task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_end(thread_id, region, instance, time)

    def task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None:
        if not self.enabled:
            return
        self.events_dispatched += 1
        self.listener.on_task_switch(thread_id, instance, time)

    def metric(self, thread_id: int, counters: dict, time: float) -> None:
        """Custom counters; piggy-backs on an existing event boundary, so
        it adds no extra per-event cost of its own."""
        if not self.enabled:
            return
        self.listener.on_metric(thread_id, counters, time)

    def phase_begin(self, name: str) -> None:
        if self.enabled:
            self.listener.on_phase_begin(name)

    def phase_end(self, name: str) -> None:
        if self.enabled:
            self.listener.on_phase_end(name)

    def finish(self, time: float) -> None:
        if self.enabled:
            self.listener.on_finish(time)
