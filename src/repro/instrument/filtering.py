"""Measurement filtering (Score-P's ``SCOREP_FILTERING_FILE`` analogue).

Score-P lets users exclude regions from measurement to cut overhead; the
events are simply never generated, so neither their cost nor their nodes
appear.  The same feature here: a :class:`RegionFilter` attached to the
:class:`~repro.instrument.layer.InstrumentationLayer` suppresses
enter/exit events (and their per-event cost) for matching regions.

Filtering applies to *region* events only.  Task lifecycle events
(begin/end/switch) are never filtered: the paper's whole point is that
task-instance tracking is load-bearing -- dropping those events breaks
the profile, so the filter refuses patterns that would match task
regions' lifecycle.

Semantics when a region is filtered: its time melts into the parent's
exclusive time (exactly as in Score-P), and anything that would have
anchored under it anchors under the parent instead.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence, Tuple

from repro.events.regions import Region, RegionType


class RegionFilter:
    """Decides which regions are measured.

    Parameters
    ----------
    exclude:
        Glob-ish name patterns (``*`` wildcard) to exclude, e.g.
        ``("taskwait", "create@*")``.
    exclude_types:
        Region types to exclude wholesale, e.g. ``(RegionType.TASKWAIT,)``.
    include:
        If given, ONLY matching names are measured (exclude still wins).
    """

    def __init__(
        self,
        exclude: Sequence[str] = (),
        exclude_types: Iterable[RegionType] = (),
        include: Optional[Sequence[str]] = None,
    ) -> None:
        self._exclude = tuple(_compile(p) for p in exclude)
        self._exclude_types = frozenset(exclude_types)
        self._include = (
            tuple(_compile(p) for p in include) if include is not None else None
        )
        #: how many events were suppressed (statistics)
        self.suppressed = 0

    def measures(self, region: Region) -> bool:
        """True if enter/exit events for this region should be generated."""
        if region.region_type in self._exclude_types:
            return False
        for pattern in self._exclude:
            if pattern.match(region.name):
                return False
        if self._include is not None:
            return any(p.match(region.name) for p in self._include)
        return True

    def note_suppressed(self) -> None:
        self.suppressed += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegionFilter suppressed={self.suppressed}>"


def _compile(pattern: str) -> "re.Pattern":
    parts = []
    for char in pattern:
        parts.append(".*" if char == "*" else re.escape(char))
    return re.compile("".join(parts) + r"\Z")


#: A ready-made filter for the paper's worst case: drop the bracketing of
#: the management regions inside tiny tasks (taskwait + creation), the
#: bulk of fib's per-task event volume.  Tasks themselves stay tracked.
MANAGEMENT_REGIONS_FILTER = RegionFilter(
    exclude=("taskwait", "taskyield", "create@*"),
)
