"""AST source-to-source instrumenter: the compiler-instrumentation analogue.

Score-P's default mode instruments every function with compiler hooks
(``-finstrument-functions``); OPARI2 additionally rewrites OpenMP
constructs.  This module reproduces the *function* half for plain Python
code: :func:`instrument_source` rewrites every function definition so its
body is bracketed by enter/exit calls into a hook object, and
:func:`instrument_function` applies the same transform to a live function.

The rewrite is semantics-preserving: the hook calls happen inside a
``try/finally``, so exceptions still propagate while exits stay balanced
-- the property the classic profiling algorithm depends on.

Example::

    hooks = FunctionHooks(root_name="<module>")
    fast_sort = instrument_function(my_sort, hooks)
    fast_sort([3, 1, 2])
    tree = hooks.finish()          # a CallTreeNode of the dynamic calls
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, Dict, Optional

from repro.errors import InstrumentationError
from repro.events.regions import RegionRegistry, RegionType
from repro.profiling.basic import ClassicProfiler

#: Name under which the hook object is injected into the function globals.
HOOK_NAME = "__pomp2__"


class _Instrumenter(ast.NodeTransformer):
    """Wraps every function body in enter/exit hook calls."""

    def __init__(self) -> None:
        self.instrumented: list[str] = []

    def _wrap(self, node):
        self.generic_visit(node)
        self.instrumented.append(node.name)
        enter_call = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=HOOK_NAME, ctx=ast.Load()),
                    attr="enter",
                    ctx=ast.Load(),
                ),
                args=[ast.Constant(value=node.name)],
                keywords=[],
            )
        )
        exit_call = ast.Expr(
            value=ast.Call(
                func=ast.Attribute(
                    value=ast.Name(id=HOOK_NAME, ctx=ast.Load()),
                    attr="exit",
                    ctx=ast.Load(),
                ),
                args=[ast.Constant(value=node.name)],
                keywords=[],
            )
        )
        # Keep a leading docstring outside the try so introspection works.
        body = list(node.body)
        docstring: list[ast.stmt] = []
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            docstring = [body[0]]
            body = body[1:]
        if not body:
            body = [ast.Pass()]
        wrapped = ast.Try(body=body, handlers=[], orelse=[], finalbody=[exit_call])
        node.body = docstring + [enter_call, wrapped]
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        return self._wrap(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef):
        return self._wrap(node)


def instrument_source(source: str, filename: str = "<instrumented>") -> str:
    """Rewrite Python source so every function reports enter/exit.

    Returns the instrumented source text.  The caller provides the
    ``__pomp2__`` hook object when executing it (see :class:`FunctionHooks`).
    """
    try:
        tree = ast.parse(textwrap.dedent(source), filename=filename)
    except SyntaxError as exc:
        raise InstrumentationError(f"cannot parse source: {exc}") from exc
    transformer = _Instrumenter()
    tree = transformer.visit(tree)
    ast.fix_missing_locations(tree)
    if not transformer.instrumented:
        raise InstrumentationError("source contains no function definitions")
    return ast.unparse(tree)


def instrument_function(fn: Callable, hooks: "FunctionHooks") -> Callable:
    """Return an instrumented clone of ``fn`` bound to ``hooks``.

    The function's source is re-parsed, transformed, and re-executed in a
    copy of its globals with the hook object injected.  Closures are not
    supported (their cells cannot be reconstructed from source).
    """
    if fn.__closure__:
        raise InstrumentationError(
            f"cannot instrument closure {fn.__name__!r}: rewrite it as a "
            "module-level function"
        )
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError) as exc:
        raise InstrumentationError(
            f"cannot retrieve source of {fn.__name__!r}: {exc}"
        ) from exc
    instrumented = instrument_source(source, filename=f"<instrumented {fn.__name__}>")
    namespace: Dict[str, object] = dict(fn.__globals__)
    namespace[HOOK_NAME] = hooks
    exec(compile(instrumented, f"<instrumented {fn.__name__}>", "exec"), namespace)
    new_fn = namespace[fn.__name__]
    # Recursive calls inside the function body resolve through the new
    # namespace, so self-recursion is instrumented too.
    return new_fn  # type: ignore[return-value]


class FunctionHooks:
    """Hook object receiving enter/exit calls from instrumented functions.

    Builds a call-path profile with a :class:`ClassicProfiler`.  The clock
    is a simple event counter by default (deterministic); pass ``clock``
    for real time measurements.
    """

    def __init__(
        self,
        root_name: str = "<program>",
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = RegionRegistry()
        root = self.registry.register(root_name, RegionType.FUNCTION)
        self._profiler = ClassicProfiler(root)
        self._counter = 0.0
        self._clock = clock
        self._profiler.enter(root, self._now())
        self.calls = 0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._counter += 1.0
        return self._counter

    def enter(self, name: str) -> None:
        self.calls += 1
        region = self.registry.register(name, RegionType.FUNCTION)
        self._profiler.enter(region, self._now())

    def exit(self, name: str) -> None:
        region = self.registry.register(name, RegionType.FUNCTION)
        self._profiler.exit(region, self._now())

    def finish(self):
        """Close the root and return the call tree."""
        self._profiler.exit(self._profiler.root.region, self._now())
        return self._profiler.finish()
