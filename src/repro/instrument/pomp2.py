"""The POMP2-style listener protocol and basic listeners.

A listener receives the measurement events the instrumented application
produces.  :class:`~repro.profiling.task_profiler.TaskProfiler` is the
production listener; :class:`NullListener` discards everything (the
"uninstrumented" run still routes through it so both configurations take
the same code path); :class:`MulticastListener` fans out to several
listeners (e.g. profiler + event-stream recorder).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from repro.events.model import InstanceId
from repro.events.regions import Region


@runtime_checkable
class Pomp2Listener(Protocol):
    """What the instrumentation layer calls.  All times are virtual µs."""

    def on_enter(
        self, thread_id: int, region: Region, time: float, parameter: Optional[tuple] = None
    ) -> None: ...

    def on_exit(self, thread_id: int, region: Region, time: float) -> None: ...

    def on_task_begin(
        self,
        thread_id: int,
        region: Region,
        instance: InstanceId,
        time: float,
        parameter: Optional[tuple] = None,
    ) -> None: ...

    def on_task_end(
        self, thread_id: int, region: Region, instance: InstanceId, time: float
    ) -> None: ...

    def on_task_switch(self, thread_id: int, instance: InstanceId, time: float) -> None: ...

    def on_metric(self, thread_id: int, counters: dict, time: float) -> None: ...

    def on_phase_begin(self, name: str) -> None: ...

    def on_phase_end(self, name: str) -> None: ...

    def on_finish(self, time: float) -> None: ...


class NullListener:
    """Discards all events (used for uninstrumented baseline runs)."""

    def on_enter(self, thread_id, region, time, parameter=None) -> None:
        pass

    def on_exit(self, thread_id, region, time) -> None:
        pass

    def on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        pass

    def on_task_end(self, thread_id, region, instance, time) -> None:
        pass

    def on_task_switch(self, thread_id, instance, time) -> None:
        pass

    def on_metric(self, thread_id, counters, time) -> None:
        pass

    def on_phase_begin(self, name) -> None:
        pass

    def on_phase_end(self, name) -> None:
        pass

    def on_finish(self, time) -> None:
        pass


class MulticastListener:
    """Forwards every event to each registered listener, in order."""

    def __init__(self, listeners: Optional[List[Pomp2Listener]] = None) -> None:
        self.listeners: List[Pomp2Listener] = list(listeners or [])

    def add(self, listener: Pomp2Listener) -> None:
        self.listeners.append(listener)

    def on_enter(self, thread_id, region, time, parameter=None) -> None:
        for listener in self.listeners:
            listener.on_enter(thread_id, region, time, parameter)

    def on_exit(self, thread_id, region, time) -> None:
        for listener in self.listeners:
            listener.on_exit(thread_id, region, time)

    def on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        for listener in self.listeners:
            listener.on_task_begin(thread_id, region, instance, time, parameter)

    def on_task_end(self, thread_id, region, instance, time) -> None:
        for listener in self.listeners:
            listener.on_task_end(thread_id, region, instance, time)

    def on_task_switch(self, thread_id, instance, time) -> None:
        for listener in self.listeners:
            listener.on_task_switch(thread_id, instance, time)

    def on_metric(self, thread_id, counters, time) -> None:
        for listener in self.listeners:
            listener.on_metric(thread_id, counters, time)

    def on_phase_begin(self, name) -> None:
        for listener in self.listeners:
            listener.on_phase_begin(name)

    def on_phase_end(self, name) -> None:
        for listener in self.listeners:
            listener.on_phase_end(name)

    def on_finish(self, time) -> None:
        for listener in self.listeners:
            listener.on_finish(time)


class RecordingListener:
    """Appends every event to a :class:`~repro.events.stream.ProgramTrace`."""

    def __init__(self, trace) -> None:
        self.trace = trace

    def on_enter(self, thread_id, region, time, parameter=None) -> None:
        from repro.events.model import EnterEvent

        self.trace.record(
            EnterEvent(thread_id, time, self._exec(thread_id), region, parameter)
        )

    def on_exit(self, thread_id, region, time) -> None:
        from repro.events.model import ExitEvent

        self.trace.record(ExitEvent(thread_id, time, self._exec(thread_id), region))

    def on_task_begin(self, thread_id, region, instance, time, parameter=None) -> None:
        from repro.events.model import TaskBeginEvent

        self._current[thread_id] = instance
        self.trace.record(
            TaskBeginEvent(thread_id, time, instance, region, instance, parameter)
        )

    def on_task_end(self, thread_id, region, instance, time) -> None:
        from repro.events.model import TaskEndEvent, implicit_instance_id

        self.trace.record(TaskEndEvent(thread_id, time, instance, region, instance))
        self._current[thread_id] = implicit_instance_id(thread_id)

    def on_task_switch(self, thread_id, instance, time) -> None:
        from repro.events.model import TaskSwitchEvent

        self._current[thread_id] = instance
        self.trace.record(TaskSwitchEvent(thread_id, time, instance, instance))

    def on_metric(self, thread_id, counters, time) -> None:
        pass  # counters live in the profile, not the event trace

    def on_phase_begin(self, name) -> None:
        pass

    def on_phase_end(self, name) -> None:
        pass

    def on_finish(self, time) -> None:
        pass

    # ------------------------------------------------------------------
    @property
    def _current(self):
        if not hasattr(self, "_current_map"):
            from repro.events.model import implicit_instance_id

            self._current_map = {
                t: implicit_instance_id(t) for t in range(self.trace.n_threads)
            }
        return self._current_map

    def _exec(self, thread_id: int):
        return self._current[thread_id]
