"""Instrumentation layer: the OPARI2/POMP2 analogue.

The paper's measurement stack is: OPARI2 rewrites the source to insert
POMP2 calls around OpenMP constructs (including task-instance ID storage
inside the task context), the compiler inserts function enter/exit hooks,
and Score-P implements the POMP2 interface to receive the events.

Here the simulated runtime plays the role of the rewritten source: it
calls into :class:`~repro.instrument.layer.InstrumentationLayer` at each
construct boundary.  The layer

* charges the per-event instrumentation cost to the executing simulated
  thread (this is what the overhead evaluation of Section V measures),
* optionally records the event into a :class:`~repro.events.stream.ProgramTrace`,
* forwards the event to a POMP2-style listener -- usually the
  :class:`~repro.profiling.task_profiler.TaskProfiler`.

:mod:`repro.instrument.ast_instrumenter` is the compiler-instrumentation
analogue: an AST source-to-source pass inserting enter/exit hooks into
plain Python functions.
"""

from repro.instrument.pomp2 import MulticastListener, NullListener, Pomp2Listener
from repro.instrument.filtering import MANAGEMENT_REGIONS_FILTER, RegionFilter
from repro.instrument.layer import InstrumentationLayer
from repro.instrument.ast_instrumenter import instrument_source, instrument_function

__all__ = [
    "Pomp2Listener",
    "NullListener",
    "MulticastListener",
    "InstrumentationLayer",
    "RegionFilter",
    "MANAGEMENT_REGIONS_FILTER",
    "instrument_source",
    "instrument_function",
]
