"""Profile archive & regression sentinel.

The paper's Section VI compares profiles of different runs by hand;
this subpackage makes that workflow persistent and machine-checkable:

* :mod:`~repro.archive.store` -- the content-addressed run store:
  gzip'd canonical profile JSON keyed by sha256 (identical runs
  deduplicate to one object), plus an append-only JSONL index of run
  metadata, written crash-safely via
  :func:`repro.ioutil.atomic_write` under an advisory lock.
* :mod:`~repro.archive.meta` -- :class:`RunMeta` records (kernel,
  size/variant, threads, seed, substrates, configuration fingerprint,
  virtual wall time) and the :func:`config_fingerprint` grouping hash.
* :mod:`~repro.archive.query` -- :func:`find_runs` filtering and
  :func:`latest_baseline` selection.
* :mod:`~repro.archive.baseline` -- :class:`Baseline`: N archived runs
  aggregated into per-region per-metric mean/std/min/max.
* :mod:`~repro.archive.sentinel` -- the noise-aware regression
  sentinel: ratio + z-score thresholds per metric, region verdicts
  (ok/regressed/improved/appeared/vanished), CI exit-code semantics.
* :mod:`~repro.archive.fsck` -- integrity audit & repair: verifies
  every object's sha256, quarantines corrupt blobs, deletes orphans,
  drops dangling/torn index records, rebuilds the index while
  preserving run-id monotonicity.

Surfaced on the CLI as ``repro run --archive``, ``repro archive
{list,show,gc,tag,baseline,fsck}`` and ``repro sentinel``; supervised
fault grids auto-archive each cell's profile next to their journal.
"""

from repro.archive.baseline import BASELINE_METRICS, Baseline, MetricStats
from repro.archive.fsck import FSCK_ISSUE_KINDS, FsckIssue, FsckReport, fsck
from repro.archive.meta import (
    RunMeta,
    config_fingerprint,
    meta_for_outcome,
    meta_for_result,
)
from repro.archive.query import baselines_available, find_runs, latest_baseline
from repro.archive.sentinel import (
    DEFAULT_POLICIES,
    MetricPolicy,
    RegionVerdict,
    SentinelPolicy,
    SentinelReport,
    compare_to_baseline,
)
from repro.archive.store import (
    ArchiveRecord,
    ArchiveStore,
    GcStats,
    canonical_profile_bytes,
    content_hash,
)
from repro.errors import ArchiveLockTimeout

__all__ = [
    "ArchiveLockTimeout",
    "ArchiveRecord",
    "ArchiveStore",
    "BASELINE_METRICS",
    "Baseline",
    "DEFAULT_POLICIES",
    "FSCK_ISSUE_KINDS",
    "FsckIssue",
    "FsckReport",
    "fsck",
    "GcStats",
    "MetricPolicy",
    "MetricStats",
    "RegionVerdict",
    "RunMeta",
    "SentinelPolicy",
    "SentinelReport",
    "baselines_available",
    "canonical_profile_bytes",
    "compare_to_baseline",
    "config_fingerprint",
    "content_hash",
    "find_runs",
    "latest_baseline",
    "meta_for_outcome",
    "meta_for_result",
]
