"""The regression sentinel: noise-aware comparison against a baseline.

Replaces the manual Section-VI workflow ("comparison of profiles of
instrumented runs ... shows") with a machine verdict: each region of a
candidate profile is classified against the baseline statistics as

* ``ok`` -- within thresholds,
* ``regressed`` -- slower by both the ratio and (when the baseline has
  variance) the z-score threshold,
* ``improved`` -- the mirror image,
* ``appeared`` / ``vanished`` -- structural changes in the region set.

Two thresholds gate a regression because either alone misfires: a pure
ratio flags µs-level noise on tiny regions, a pure z-score flags
perfectly repeatable baselines (std == 0) on any change at all.  The
noise floor (``min_abs_us``) additionally mutes regions too small to
matter.  Exit-code semantics (:attr:`SentinelReport.exit_code`) make
the verdict consumable by CI: 0 clean, 1 regressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.archive.baseline import Baseline
from repro.cube.query import flat_region_profile

#: Region verdicts, in severity order.
VERDICTS = ("regressed", "vanished", "appeared", "improved", "ok")


@dataclass(frozen=True)
class MetricPolicy:
    """Noise-aware thresholds for one metric.

    A region regresses on a metric only when the candidate exceeds the
    baseline mean by ``ratio`` *and*, when the baseline has variance,
    by ``zscore`` standard deviations.  Values below ``min_abs`` on both
    sides are noise-floor-muted.
    """

    ratio: float = 1.10
    zscore: float = 3.0
    min_abs: float = 1.0

    def __post_init__(self) -> None:
        if self.ratio <= 1.0:
            raise ValueError(f"ratio threshold must be > 1, got {self.ratio}")
        if self.zscore < 0:
            raise ValueError(f"zscore threshold must be >= 0, got {self.zscore}")


#: Default per-metric policies: exclusive time is the headline metric;
#: visit counts regress only on exact-ratio changes (they are integral
#: and deterministic for a fixed input).
DEFAULT_POLICIES: Mapping[str, MetricPolicy] = {
    "exclusive": MetricPolicy(),
}


@dataclass(frozen=True)
class SentinelPolicy:
    """The complete comparison policy."""

    metrics: Mapping[str, MetricPolicy] = field(
        default_factory=lambda: dict(DEFAULT_POLICIES)
    )
    #: whether structural changes fail the run (exit code 1)
    fail_on_appeared: bool = False
    fail_on_vanished: bool = False

    def with_thresholds(
        self,
        metric: str,
        *,
        ratio: Optional[float] = None,
        zscore: Optional[float] = None,
        min_abs: Optional[float] = None,
    ) -> "SentinelPolicy":
        current = self.metrics.get(metric, MetricPolicy())
        updates = {}
        if ratio is not None:
            updates["ratio"] = ratio
        if zscore is not None:
            updates["zscore"] = zscore
        if min_abs is not None:
            updates["min_abs"] = min_abs
        metrics = dict(self.metrics)
        metrics[metric] = replace(current, **updates)
        return replace(self, metrics=metrics)


@dataclass
class RegionVerdict:
    """One region x metric comparison."""

    region: str
    metric: str
    verdict: str
    candidate: float
    mean: float
    std: float
    #: candidate / baseline mean (inf when the region appeared)
    ratio: float
    #: standard score against the baseline (None when std == 0)
    zscore: Optional[float] = None
    #: baseline runs the region appeared in / total baseline runs
    presence: Tuple[int, int] = (0, 0)

    def describe(self) -> str:
        if self.verdict == "appeared":
            detail = "not in baseline"
        elif self.verdict == "vanished":
            detail = f"baseline mean {self.mean:.2f}"
        else:
            z = "n/a" if self.zscore is None else f"{self.zscore:+.1f}"
            detail = (
                f"{self.mean:.2f} ± {self.std:.2f} -> {self.candidate:.2f} "
                f"({self.ratio:.2f}x, z={z})"
            )
        return f"{self.region} [{self.metric}] {self.verdict}: {detail}"


@dataclass
class SentinelReport:
    """The structured verdict of one candidate-vs-baseline comparison."""

    verdicts: List[RegionVerdict]
    baseline_runs: int
    policy: SentinelPolicy = field(default_factory=SentinelPolicy)
    baseline_run_ids: Tuple[str, ...] = ()
    candidate_label: str = ""

    def by_verdict(self, verdict: str) -> List[RegionVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    @property
    def regressions(self) -> List[RegionVerdict]:
        return self.by_verdict("regressed")

    @property
    def counts(self) -> Dict[str, int]:
        counts = {verdict: 0 for verdict in VERDICTS}
        for entry in self.verdicts:
            counts[entry.verdict] += 1
        return counts

    @property
    def ok(self) -> bool:
        return self.exit_code == 0

    @property
    def exit_code(self) -> int:
        """CI semantics: 0 clean, 1 regression (or failing structural
        change under the policy)."""
        if self.regressions:
            return 1
        if self.policy.fail_on_appeared and self.by_verdict("appeared"):
            return 1
        if self.policy.fail_on_vanished and self.by_verdict("vanished"):
            return 1
        return 0

    def summary(self) -> str:
        counts = self.counts
        parts = [
            f"{counts[v]} {v}" for v in VERDICTS if counts[v] or v == "regressed"
        ]
        verdict = "REGRESSED" if self.exit_code else "OK"
        return (
            f"sentinel {verdict} vs {self.baseline_runs}-run baseline: "
            + ", ".join(parts)
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "exit_code": self.exit_code,
            "baseline_runs": self.baseline_runs,
            "baseline_run_ids": list(self.baseline_run_ids),
            "candidate": self.candidate_label,
            "counts": self.counts,
            "verdicts": [
                {
                    "region": v.region,
                    "metric": v.metric,
                    "verdict": v.verdict,
                    "candidate": v.candidate,
                    "mean": v.mean,
                    "std": v.std,
                    "ratio": v.ratio,
                    "zscore": v.zscore,
                    "presence": list(v.presence),
                }
                for v in self.verdicts
            ],
        }


def _severity(entry: RegionVerdict) -> tuple:
    rank = VERDICTS.index(entry.verdict)
    magnitude = abs(entry.zscore) if entry.zscore is not None else 0.0
    ratio_shift = abs(entry.ratio - 1.0) if entry.ratio != float("inf") else float("inf")
    return (rank, -ratio_shift, -magnitude, entry.region, entry.metric)


def compare_to_baseline(
    profile,
    baseline: Baseline,
    policy: Optional[SentinelPolicy] = None,
    candidate_label: str = "",
) -> SentinelReport:
    """Classify every region of ``profile`` against ``baseline``.

    Structural verdicts (appeared/vanished) are emitted once per region;
    numeric verdicts once per region x policy metric.  The report is
    sorted most-severe first.
    """
    policy = policy if policy is not None else SentinelPolicy()
    candidate = flat_region_profile(profile)
    verdicts: List[RegionVerdict] = []
    headline = next(iter(policy.metrics), "exclusive")
    regions = sorted(set(candidate) | set(baseline.regions))
    for region in regions:
        presence = baseline.presence(region)
        in_candidate = region in candidate
        if presence == 0 and in_candidate:
            value = float(candidate[region].get(headline, 0.0))
            verdicts.append(
                RegionVerdict(
                    region=region,
                    metric=headline,
                    verdict="appeared",
                    candidate=value,
                    mean=0.0,
                    std=0.0,
                    ratio=float("inf"),
                    presence=(0, baseline.n_runs),
                )
            )
            continue
        if presence > 0 and not in_candidate:
            stats = baseline.stats(region, headline)
            verdicts.append(
                RegionVerdict(
                    region=region,
                    metric=headline,
                    verdict="vanished",
                    candidate=0.0,
                    mean=stats.mean if stats else 0.0,
                    std=stats.std if stats else 0.0,
                    ratio=0.0,
                    presence=(presence, baseline.n_runs),
                )
            )
            continue
        for metric, thresholds in policy.metrics.items():
            stats = baseline.stats(region, metric)
            value = float(candidate[region].get(metric, 0.0))
            mean = stats.mean if stats is not None else 0.0
            std = stats.std if stats is not None else 0.0
            if value <= thresholds.min_abs and mean <= thresholds.min_abs:
                verdict, ratio, zscore = "ok", 1.0, None
            else:
                ratio = value / mean if mean > 0 else float("inf")
                zscore = stats.zscore(value) if stats is not None else None
                verdict = "ok"
                if ratio >= thresholds.ratio and (
                    zscore is None or zscore >= thresholds.zscore
                ):
                    verdict = "regressed"
                elif ratio <= 1.0 / thresholds.ratio and (
                    zscore is None or zscore <= -thresholds.zscore
                ):
                    verdict = "improved"
            verdicts.append(
                RegionVerdict(
                    region=region,
                    metric=metric,
                    verdict=verdict,
                    candidate=value,
                    mean=mean,
                    std=std,
                    ratio=ratio,
                    zscore=zscore,
                    presence=(presence, baseline.n_runs),
                )
            )
    verdicts.sort(key=_severity)
    return SentinelReport(
        verdicts=verdicts,
        baseline_runs=baseline.n_runs,
        policy=policy,
        baseline_run_ids=baseline.run_ids(),
        candidate_label=candidate_label,
    )
