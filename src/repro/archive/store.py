"""The content-addressed profile store.

Layout of an archive directory::

    <root>/
      objects/<aa>/<sha256>.json.gz   # gzip'd canonical profile JSON
      index.jsonl                     # append-only run/tag records
      index.lock                      # advisory lock for index rewrites

**Objects** are immutable and keyed by the sha256 of the *canonical*
profile JSON (sorted keys, compact separators), so re-archiving an
identical profile is free: byte-identical content maps to the same key
and the existing object is reused.  The gzip header is written with a
zeroed mtime, making the object file itself a pure function of the
profile content.

**The index** is append-only JSONL.  Every mutation rewrites it through
:func:`repro.ioutil.atomic_write` under an advisory file lock, so a
crash mid-write can never leave a torn index (readers see the old or
the new file, nothing in between) and concurrent supervisor workers
archiving cells in parallel serialize cleanly.  Loading tolerates
unparsable lines the same way the supervisor journal does: corruption
never makes the archive refuse to answer, the worst case is a missing
record.

Record types::

    {"type":"run","run_id":"r0001","sha256":...,"created":...,"meta":{...}}
    {"type":"tag","run_id":"r0001","tag":"baseline"}
    {"type":"counter","last_run":7}   # id high-water mark left by gc

Run ids are allocated monotonically: the next id is one past the
highest serial ever recorded, scanning every raw ``run`` line plus the
``counter`` high-water record :meth:`ArchiveStore.gc` writes when it
prunes the index.  Pruned ids are therefore never reused -- a run id
keeps naming the same run for the archive's whole life.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.cube.export import profile_from_dict, profile_to_dict
from repro.errors import ArchiveError, ArchiveLockTimeout
from repro.ioutil import atomic_write
from repro.archive.meta import RunMeta

INDEX_NAME = "index.jsonl"
OBJECTS_DIR = "objects"
QUARANTINE_DIR = "quarantine"
GZIP_MAGIC = b"\x1f\x8b"


def canonical_profile_bytes(profile) -> bytes:
    """The canonical serialized form content addresses are computed on."""
    data = profile_to_dict(profile)
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def content_hash(profile) -> str:
    return hashlib.sha256(canonical_profile_bytes(profile)).hexdigest()


@dataclass
class ArchiveRecord:
    """One ``run`` record of the index, with its tags folded in."""

    run_id: str
    sha256: str
    created: float
    meta: RunMeta
    #: True when ``put`` found the object already present (same content)
    deduplicated: bool = False
    extra_tags: List[str] = field(default_factory=list)

    @property
    def tags(self) -> List[str]:
        seen = list(self.meta.tags)
        for tag in self.extra_tags:
            if tag not in seen:
                seen.append(tag)
        return seen

    def to_dict(self) -> dict:
        return {
            "type": "run",
            "run_id": self.run_id,
            "sha256": self.sha256,
            "created": self.created,
            "meta": self.meta.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArchiveRecord":
        return cls(
            run_id=data["run_id"],
            sha256=data["sha256"],
            created=float(data.get("created", 0.0)),
            meta=RunMeta.from_dict(data.get("meta") or {}),
        )


@dataclass
class GcStats:
    """What one :meth:`ArchiveStore.gc` pass removed."""

    runs_dropped: int = 0
    objects_deleted: int = 0
    bytes_freed: int = 0
    #: unreferenced objects that could not be unlinked (OSError); they
    #: stay on disk as garbage a later gc pass can re-collect
    objects_failed: int = 0


class ArchiveStore:
    """A content-addressed archive rooted at one directory.

    ``lock_timeout_s`` bounds how long any index mutation will wait for
    the advisory index lock; past it, :class:`~repro.errors.ArchiveLockTimeout`
    is raised instead of blocking forever.  The default (None) preserves
    the historical block-indefinitely behavior; lease-based callers (the
    campaign gateway) set it below their lease TTL so a wedged lock
    holder surfaces as a structured error, not as a silently forfeited
    lease.
    """

    def __init__(self, root: str, *, lock_timeout_s: Optional[float] = None):
        self.root = os.fspath(root)
        if lock_timeout_s is not None and lock_timeout_s <= 0:
            raise ValueError(
                f"lock_timeout_s must be positive, got {lock_timeout_s!r}"
            )
        self.lock_timeout_s = lock_timeout_s

    # -- paths ---------------------------------------------------------
    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    def object_path(self, sha256: str) -> str:
        return os.path.join(self.root, OBJECTS_DIR, sha256[:2], sha256 + ".json.gz")

    # -- locking -------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock serializing index rewrites.

        Best-effort where ``fcntl`` is unavailable (Windows): the write
        itself stays atomic either way, the lock only serializes
        concurrent read-modify-write cycles.
        """
        os.makedirs(self.root, exist_ok=True)
        lock_path = os.path.join(self.root, "index.lock")
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            yield
            return
        with open(lock_path, "a+") as handle:
            if self.lock_timeout_s is None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            else:
                # Bounded wait: poll a non-blocking flock until the
                # deadline.  EWOULDBLOCK is the only retryable errno;
                # anything else is a real filesystem failure.
                deadline = time.monotonic() + self.lock_timeout_s
                while True:
                    try:
                        fcntl.flock(
                            handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB
                        )
                        break
                    except (BlockingIOError, PermissionError):
                        if time.monotonic() >= deadline:
                            raise ArchiveLockTimeout(
                                f"could not acquire the archive index lock "
                                f"at {lock_path!r} within "
                                f"{self.lock_timeout_s:g} s (held by a "
                                f"concurrent writer?)"
                            ) from None
                        time.sleep(
                            min(0.01, self.lock_timeout_s / 20.0)
                        )
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- objects -------------------------------------------------------
    @staticmethod
    def _object_intact(path: str) -> bool:
        """Cheap on-disk sanity: the file starts with the gzip magic.

        A bare ``os.path.exists`` would happily trust a zero-byte or
        truncated-header file (the residue of a crash on a filesystem
        without atomic rename, or of outside interference) and make
        ``put`` dedup against garbage forever.  Reading two bytes rules
        out the empty/torn-header cases; full payload verification
        (decompress + sha256) stays in :meth:`load_object` and
        :func:`~repro.archive.fsck.fsck`, which are the paths that pay
        for reading the whole blob anyway.
        """
        try:
            with open(path, "rb") as handle:
                return handle.read(2) == GZIP_MAGIC
        except OSError:
            return False

    def put_object(self, profile) -> tuple:
        """Store the profile blob; returns ``(sha256, created)``.

        ``created`` is False when an intact object with this content
        already exists -- the content-addressed deduplication path.  An
        existing but non-intact file (empty, truncated header) is
        rewritten rather than trusted.
        """
        payload = canonical_profile_bytes(profile)
        sha256 = hashlib.sha256(payload).hexdigest()
        path = self.object_path(sha256)
        if os.path.exists(path) and self._object_intact(path):
            return sha256, False
        # mtime=0 keeps the compressed object a pure function of content.
        blob = gzip.compress(payload, mtime=0)
        atomic_write(path, blob)
        return sha256, True

    def has_object(self, sha256: str) -> bool:
        path = self.object_path(sha256)
        return os.path.exists(path) and self._object_intact(path)

    def load_object(self, sha256: str):
        """Load and verify one object back into a ``Profile``.

        Raises :class:`ArchiveError` when the object is missing or its
        bytes no longer hash to their name;
        :class:`~repro.errors.ProfileFormatError` propagates untouched
        when the entry was written by an incompatible format version.
        """
        path = self.object_path(sha256)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise ArchiveError(
                f"archive object {sha256[:12]}… is missing from {self.root!r} "
                f"(was it gc'd or the directory pruned?)"
            ) from None
        try:
            payload = gzip.decompress(blob)
        except OSError as exc:
            raise ArchiveError(
                f"archive object {sha256[:12]}… is not valid gzip: {exc}"
            ) from exc
        actual = hashlib.sha256(payload).hexdigest()
        if actual != sha256:
            raise ArchiveError(
                f"archive object {sha256[:12]}… fails verification: content "
                f"hashes to {actual[:12]}… (on-disk corruption)"
            )
        return profile_from_dict(json.loads(payload.decode("utf-8")))

    # -- index ---------------------------------------------------------
    def _read_index_lines(self) -> List[str]:
        try:
            with open(self.index_path, encoding="utf-8") as handle:
                return handle.read().splitlines()
        except FileNotFoundError:
            return []

    def _append_entries(self, entries: List[dict]) -> None:
        lines = self._read_index_lines()
        for entry in entries:
            lines.append(json.dumps(entry, sort_keys=True, separators=(",", ":")))
        atomic_write(self.index_path, "\n".join(lines) + "\n")

    def records(self) -> List[ArchiveRecord]:
        """All run records, oldest first, with ``tag`` records folded in."""
        records: Dict[str, ArchiveRecord] = {}
        order: List[str] = []
        for line in self._read_index_lines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn/corrupt line: skip, like the journal does
            kind = entry.get("type")
            if kind == "run":
                try:
                    record = ArchiveRecord.from_dict(entry)
                except (KeyError, TypeError, ValueError):
                    continue
                if record.run_id not in records:
                    order.append(record.run_id)
                records[record.run_id] = record
            elif kind == "tag":
                record = records.get(entry.get("run_id"))
                tag = entry.get("tag")
                if record is not None and tag and tag not in record.extra_tags:
                    record.extra_tags.append(tag)
        return [records[run_id] for run_id in order]

    def _max_run_serial(self) -> int:
        """The highest run-id serial the index has ever allocated.

        Scans every raw ``run`` line (not the deduplicated
        :meth:`records` view, which keeps one entry per id) and any
        ``counter`` high-water records gc leaves behind when it prunes,
        so ids stay monotonic even after the records that carried them
        are gone from the index.
        """
        highest = 0
        for line in self._read_index_lines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            kind = entry.get("type")
            if kind == "run":
                run_id = entry.get("run_id")
                if isinstance(run_id, str) and run_id[:1] == "r":
                    try:
                        highest = max(highest, int(run_id[1:]))
                    except ValueError:
                        continue
            elif kind == "counter":
                try:
                    highest = max(highest, int(entry.get("last_run", 0)))
                except (TypeError, ValueError):
                    continue
        return highest

    def get_record(self, ref: str) -> ArchiveRecord:
        """Resolve a run id, full hash, or unambiguous hash prefix."""
        records = self.records()
        for record in records:
            if record.run_id == ref:
                return record
        if len(ref) >= 6:
            matches = [r for r in records if r.sha256.startswith(ref)]
            unique_shas = {r.sha256 for r in matches}
            if len(unique_shas) == 1:
                return matches[-1]
            if len(unique_shas) > 1:
                raise ArchiveError(
                    f"hash prefix {ref!r} is ambiguous "
                    f"({len(unique_shas)} distinct objects match)"
                )
        known = ", ".join(r.run_id for r in records[-8:]) or "none archived yet"
        raise ArchiveError(
            f"no archived run matches {ref!r} (recent run ids: {known})"
        )

    # -- high-level API ------------------------------------------------
    def put(self, profile, meta: RunMeta) -> ArchiveRecord:
        """Archive one run: store the blob, append an index record.

        Both the object write and the index append happen under the
        index lock, so a concurrent :meth:`gc` can never observe the
        fresh object before its record exists and delete it as an
        orphan.  Objects are small (gzip'd profile JSON); holding the
        lock across the write is cheap.
        """
        with self._locked():
            sha256, created = self.put_object(profile)
            record = ArchiveRecord(
                run_id=f"r{self._max_run_serial() + 1:04d}",
                sha256=sha256,
                created=time.time(),
                meta=meta,
                deduplicated=not created,
            )
            self._append_entries([record.to_dict()])
        return record

    def load_profile(self, ref: str):
        return self.load_object(self.get_record(ref).sha256)

    def tag(self, ref: str, tag: str) -> ArchiveRecord:
        """Append a tag to an existing run record."""
        if not tag:
            raise ArchiveError("tag must be a non-empty string")
        with self._locked():
            record = self.get_record(ref)
            if tag not in record.tags:
                self._append_entries(
                    [{"type": "tag", "run_id": record.run_id, "tag": tag}]
                )
                record.extra_tags.append(tag)
        return record

    def gc(self, keep_last: Optional[int] = None) -> GcStats:
        """Prune the archive.

        With ``keep_last=N``, only the newest N runs of each
        configuration group (:meth:`RunMeta.group_key`) survive in the
        index.  Objects no longer referenced by any surviving record --
        including orphans from runs that crashed between the object
        write and the index append -- are deleted.
        """
        stats = GcStats()
        with self._locked():
            records = self.records()
            keep = records
            if keep_last is not None:
                if keep_last < 1:
                    raise ArchiveError(f"keep_last must be >= 1, got {keep_last}")
                by_group: Dict[tuple, List[ArchiveRecord]] = {}
                for record in records:
                    by_group.setdefault(record.meta.group_key(), []).append(record)
                survivors = set()
                for group in by_group.values():
                    survivors.update(id(r) for r in group[-keep_last:])
                keep = [r for r in records if id(r) in survivors]
                stats.runs_dropped = len(records) - len(keep)
            # Preserve the id high-water mark across the rewrite so ids
            # of pruned runs are never handed out again.  The index --
            # counter record first -- is written *before* any object is
            # deleted: an OSError (ENOSPC, permissions) mid-prune then
            # leaves a consistent index whose surviving records all still
            # have their objects; undeleted garbage is re-collectable by
            # a later gc.
            entries: List[dict] = [
                {"type": "counter", "last_run": self._max_run_serial()}
            ]
            for record in keep:
                entries.append(record.to_dict())
                for tag in record.extra_tags:
                    entries.append(
                        {"type": "tag", "run_id": record.run_id, "tag": tag}
                    )
            if keep_last is not None:
                text = "\n".join(
                    json.dumps(e, sort_keys=True, separators=(",", ":"))
                    for e in entries
                )
                atomic_write(self.index_path, text + "\n")
            referenced = {record.sha256 for record in keep}
            objects_root = os.path.join(self.root, OBJECTS_DIR)
            for dirpath, _dirnames, filenames in os.walk(objects_root):
                for filename in filenames:
                    if not filename.endswith(".json.gz"):
                        continue
                    sha256 = filename[: -len(".json.gz")]
                    if sha256 in referenced:
                        continue
                    path = os.path.join(dirpath, filename)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        # Racing deletion or a failing filesystem: skip
                        # the object (and its stats -- only what was
                        # actually unlinked is counted) and keep pruning.
                        stats.objects_failed += 1
                        continue
                    stats.bytes_freed += size
                    stats.objects_deleted += 1
        return stats
