"""Baselines: N archived runs aggregated into per-region statistics.

The sentinel needs more than a single reference run -- scheduling noise
(steal victims, queue interleavings) moves per-region times between
repetitions, and a threshold that ignores that variance either cries
wolf or sleeps through real regressions (Drebes et al., *Automatic
Detection of Performance Anomalies in Task-Parallel Programs*).  A
:class:`Baseline` therefore aggregates the flat region view
(:func:`repro.cube.query.flat_region_profile`) of every constituent run
into per-region per-metric mean/std/min/max, plus a presence count so a
region that only appears in some repetitions is not mistaken for a
structural change.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cube.query import flat_region_profile

#: The flat-view metrics a baseline aggregates.
BASELINE_METRICS = ("exclusive", "inclusive", "visits")


@dataclass
class MetricStats:
    """Mean/std/min/max/count of one metric over the baseline runs.

    ``count`` is the number of runs the region appeared in; statistics
    are computed over those runs only (absence is a structural signal,
    not a zero sample).
    """

    count: int = 0
    mean: float = 0.0
    std: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MetricStats":
        n = len(samples)
        if n == 0:
            return cls()
        mean = sum(samples) / n
        variance = sum((s - mean) ** 2 for s in samples) / n
        std = math.sqrt(variance)
        # Identical samples accumulate float residue (std ~ 1e-16);
        # treat that as the exactly-repeatable case, not real variance.
        if std <= max(abs(mean), 1.0) * 1e-9:
            std = 0.0
        return cls(
            count=n,
            mean=mean,
            std=std,
            minimum=min(samples),
            maximum=max(samples),
        )

    def zscore(self, value: float) -> Optional[float]:
        """Standard score of ``value``, or None when std is zero."""
        if self.count == 0 or self.std == 0.0:
            return None
        return (value - self.mean) / self.std


@dataclass
class Baseline:
    """Aggregated statistics over N runs of one configuration."""

    n_runs: int
    #: region name -> metric name -> stats
    regions: Dict[str, Dict[str, MetricStats]] = field(default_factory=dict)
    #: the archive records this baseline was built from (may be empty
    #: when aggregating in-memory profiles)
    records: List[object] = field(default_factory=list)

    @classmethod
    def from_profiles(cls, profiles: Sequence, records: Sequence = ()) -> "Baseline":
        flats = [flat_region_profile(p) for p in profiles]
        samples: Dict[str, Dict[str, List[float]]] = {}
        for flat in flats:
            for region, metrics in flat.items():
                per_region = samples.setdefault(region, {})
                for metric in BASELINE_METRICS:
                    per_region.setdefault(metric, []).append(
                        float(metrics.get(metric, 0.0))
                    )
        regions = {
            region: {
                metric: MetricStats.from_samples(values)
                for metric, values in sorted(per_region.items())
            }
            for region, per_region in sorted(samples.items())
        }
        return cls(n_runs=len(flats), regions=regions, records=list(records))

    def region_names(self) -> List[str]:
        return list(self.regions)

    def stats(self, region: str, metric: str) -> Optional[MetricStats]:
        return self.regions.get(region, {}).get(metric)

    def presence(self, region: str) -> int:
        """In how many baseline runs the region appeared."""
        per_region = self.regions.get(region)
        if not per_region:
            return 0
        return max(stats.count for stats in per_region.values())

    def run_ids(self) -> Tuple[str, ...]:
        return tuple(
            getattr(record, "run_id", "?") for record in self.records
        )

    def to_dict(self) -> dict:
        return {
            "n_runs": self.n_runs,
            "runs": list(self.run_ids()),
            "regions": {
                region: {
                    metric: {
                        "count": stats.count,
                        "mean": stats.mean,
                        "std": stats.std,
                        "min": stats.minimum,
                        "max": stats.maximum,
                    }
                    for metric, stats in per_region.items()
                }
                for region, per_region in self.regions.items()
            },
        }
