"""Run metadata: what the archive index records about each archived run.

A :class:`RunMeta` captures everything needed to group runs into
baselines and to explain a regression verdict later: the kernel and its
parameters, the runtime configuration fingerprint, and the headline
result (virtual wall time, verification status).  It is pure JSON-able
data, so it crosses the worker process boundary and survives in the
append-only index.

The **configuration fingerprint** (:func:`config_fingerprint`) is a
sha256 over the canonical JSON of every :class:`RuntimeConfig` field
that influences measured times -- thread count, scheduling policies,
the full cost model, attached substrates -- but *not* the seed: the
seed is what varies between baseline repetitions, so it is recorded
separately and excluded from the grouping key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def _substrate_names(substrates) -> Tuple[str, ...]:
    """Stable names for a mixed tuple of registry names and instances."""
    names = []
    for entry in substrates or ():
        if isinstance(entry, str):
            names.append(entry)
        else:
            names.append(getattr(entry, "name", type(entry).__name__))
    return tuple(names)


def config_fingerprint(config) -> str:
    """sha256 hex digest of the measurement-relevant configuration.

    Two runs with the same fingerprint are repetitions of the same
    configuration (possibly under different seeds); a baseline aggregates
    exactly such runs.  The cost model is included in full -- inflating
    a per-event cost *changes* the configuration, which is precisely how
    an injected slowdown shows up as a candidate diverging from its
    baseline's fingerprint in a sentinel report.
    """
    payload: Dict[str, Any] = {
        "n_threads": config.n_threads,
        "queue_policy": config.queue_policy,
        "steal": config.steal,
        "steal_policy": config.steal_policy,
        "tsc_enabled": config.tsc_enabled,
        "allow_untied": config.allow_untied,
        "instrument": config.instrument,
        "record_events": config.record_events,
        "substrates": list(_substrate_names(config.substrates)),
        "max_call_path_depth": config.max_call_path_depth,
        "measurement_filter": config.measurement_filter is not None,
        "fault_plan": config.fault_plan is not None,
        "costs": dataclasses.asdict(config.costs),
    }
    if getattr(config, "memory_budget", None) is not None:
        # Only present when a budget is armed, so every fingerprint ever
        # computed for an ungoverned configuration stays byte-identical.
        budget = config.memory_budget
        payload["memory_budget"] = (
            budget.to_dict() if hasattr(budget, "to_dict") else budget
        )
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunMeta:
    """Everything the index records about one archived run."""

    kernel: str
    size: str = ""
    variant: str = ""
    n_threads: int = 0
    seed: int = 0
    cutoff: Optional[int] = None
    substrates: Tuple[str, ...] = ()
    config_hash: str = ""
    #: virtual duration of the kernel's parallel region (µs)
    wall_time_us: Optional[float] = None
    verified: Optional[bool] = None
    #: free-form labels (``--tag``); later tags can be appended in-place
    tags: Tuple[str, ...] = ()
    #: where the run came from: ``run`` (CLI), ``supervisor``, ``api``
    source: str = "api"
    extra: Dict[str, Any] = field(default_factory=dict)

    def group_key(self) -> Tuple[str, str, str, int]:
        """The baseline grouping key: same kernel, same shape of run."""
        return (self.kernel, self.size, self.variant, self.n_threads)

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["substrates"] = list(self.substrates)
        data["tags"] = list(self.tags)
        if not self.extra:
            data.pop("extra")
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunMeta":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["substrates"] = tuple(kwargs.get("substrates") or ())
        kwargs["tags"] = tuple(kwargs.get("tags") or ())
        kwargs["extra"] = dict(kwargs.get("extra") or {})
        return cls(**kwargs)


def meta_for_result(
    result,
    *,
    size: str = "",
    variant: Optional[str] = None,
    tags=(),
    source: str = "run",
) -> RunMeta:
    """Build a :class:`RunMeta` from an analysis ``ExperimentResult``.

    ``result.config`` (carried by :func:`repro.analysis.run_program`)
    supplies the fingerprint.  ``variant`` should be the *registry*
    variant the run was requested with (``optimized``/``stress``), which
    is what queries round-trip; it defaults to the program's resolved
    variant tag from the label.
    """
    kernel, _, label_variant = result.program_label.partition("/")
    config = getattr(result, "config", None)
    run_tags = tuple(tags)
    profile = getattr(result, "profile", None)
    salvage = getattr(profile, "salvage", None)
    if (
        salvage is not None
        and getattr(salvage, "degraded", False)
        and "degraded" not in run_tags
    ):
        # Degraded runs are tagged so latest_baseline/sentinel keep them
        # out of baselines, like candidates.
        run_tags = run_tags + ("degraded",)
    return RunMeta(
        kernel=kernel,
        size=size,
        variant=variant if variant is not None else label_variant,
        n_threads=result.n_threads,
        seed=result.seed,
        cutoff=result.meta.get("cutoff"),
        substrates=_substrate_names(config.substrates if config else ()),
        config_hash=config_fingerprint(config) if config is not None else "",
        wall_time_us=result.kernel_time,
        verified=result.verified,
        tags=run_tags,
        source=source,
    )


def meta_for_outcome(
    outcome, *, size: str, variant: str, seed: int, tags=(), source: str = "run"
) -> RunMeta:
    """Build a :class:`RunMeta` from a tolerant-run ``SalvageOutcome``."""
    config = getattr(outcome, "config", None)
    status_tags = tuple(tags)
    if outcome.status != "complete" and "partial" not in status_tags:
        status_tags = status_tags + ("partial",)
    if getattr(outcome, "degraded", False) and "degraded" not in status_tags:
        status_tags = status_tags + ("degraded",)
    return RunMeta(
        kernel=outcome.app,
        size=size,
        variant=variant,
        n_threads=config.n_threads if config is not None else 0,
        seed=seed,
        substrates=_substrate_names(config.substrates if config else ()),
        config_hash=config_fingerprint(config) if config is not None else "",
        wall_time_us=outcome.duration,
        verified=outcome.verified,
        tags=status_tags,
        source=source,
    )
