"""Query layer over the archive index: filter runs, pick baselines."""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence

from repro.archive.baseline import Baseline
from repro.archive.store import ArchiveRecord, ArchiveStore
from repro.errors import ArchiveError, ArchiveWarning


def find_runs(
    store: ArchiveStore,
    *,
    kernel: Optional[str] = None,
    size: Optional[str] = None,
    variant: Optional[str] = None,
    n_threads: Optional[int] = None,
    seed: Optional[int] = None,
    tag: Optional[str] = None,
    config_hash: Optional[str] = None,
    source: Optional[str] = None,
    limit: Optional[int] = None,
    newest_first: bool = False,
) -> List[ArchiveRecord]:
    """Run records matching every given filter (None = don't care).

    ``limit`` keeps the *newest* matches either way; ``newest_first``
    only controls the order they come back in.
    """
    matches = []
    for record in store.records():
        meta = record.meta
        if kernel is not None and meta.kernel != kernel:
            continue
        if size is not None and meta.size != size:
            continue
        if variant is not None and meta.variant != variant:
            continue
        if n_threads is not None and meta.n_threads != n_threads:
            continue
        if seed is not None and meta.seed != seed:
            continue
        if tag is not None and tag not in record.tags:
            continue
        if config_hash is not None and meta.config_hash != config_hash:
            continue
        if source is not None and meta.source != source:
            continue
        matches.append(record)
    if limit is not None and limit >= 0:
        matches = matches[len(matches) - min(limit, len(matches)):]
    if newest_first:
        matches = list(reversed(matches))
    return matches


def latest_baseline(
    store: ArchiveStore,
    *,
    kernel: str,
    size: Optional[str] = None,
    variant: Optional[str] = None,
    n_threads: Optional[int] = None,
    tag: Optional[str] = None,
    runs: int = 3,
    min_runs: int = 1,
    include_candidates: bool = False,
) -> Baseline:
    """Aggregate the newest matching runs into a :class:`Baseline`.

    Two classes of archived runs are kept out of the baseline so the
    sentinel never compares a candidate against itself:

    * Runs tagged ``candidate`` (``repro sentinel --archive-candidate``
      stores these) are skipped unless ``include_candidates`` is true or
      the query explicitly asks for ``tag="candidate"``.
    * Runs tagged ``degraded`` (the resource governor reduced their
      measurement fidelity under a memory budget) are skipped unless the
      query explicitly asks for ``tag="degraded"`` -- degraded numbers
      must never anchor a regression baseline.
    * When the matching runs mix configuration fingerprints (e.g. some
      were archived with an injected cost model), only runs sharing the
      *newest* fingerprint are aggregated, with an
      :class:`~repro.errors.ArchiveWarning` naming how many were set
      aside.

    Raises :class:`~repro.errors.ArchiveError` when fewer than
    ``min_runs`` eligible runs are archived -- a sentinel without a
    statistical baseline would just be a diff.
    """
    if runs < 1:
        raise ArchiveError(f"baseline needs at least 1 run, asked for {runs}")
    records = find_runs(
        store,
        kernel=kernel,
        size=size,
        variant=variant,
        n_threads=n_threads,
        tag=tag,
    )
    if not include_candidates and tag != "candidate":
        records = [r for r in records if "candidate" not in r.tags]
    if tag != "degraded":
        records = [r for r in records if "degraded" not in r.tags]
    if records:
        newest_hash = records[-1].meta.config_hash
        stale = [r for r in records if r.meta.config_hash != newest_hash]
        if stale:
            n_hashes = len({r.meta.config_hash for r in records})
            warnings.warn(
                f"archived runs for kernel={kernel} mix {n_hashes} "
                f"configuration fingerprints; baseline uses only the "
                f"{len(records) - len(stale)} run(s) with the newest "
                f"fingerprint ({len(stale)} excluded)",
                ArchiveWarning,
                stacklevel=2,
            )
            records = [r for r in records if r.meta.config_hash == newest_hash]
    records = records[len(records) - min(runs, len(records)):]
    if len(records) < max(min_runs, 1):
        descr = [f"kernel={kernel}"]
        if size is not None:
            descr.append(f"size={size}")
        if variant is not None:
            descr.append(f"variant={variant}")
        if n_threads is not None:
            descr.append(f"threads={n_threads}")
        if tag is not None:
            descr.append(f"tag={tag}")
        raise ArchiveError(
            f"baseline needs >= {max(min_runs, 1)} archived run(s) matching "
            f"{', '.join(descr)}; found {len(records)} "
            f"(archive more with `repro run --archive`)"
        )
    profiles = [store.load_object(record.sha256) for record in records]
    return Baseline.from_profiles(profiles, records=records)


def baselines_available(store: ArchiveStore) -> List[tuple]:
    """Distinct configuration groups with their run counts, oldest first."""
    counts: dict = {}
    order: List[tuple] = []
    for record in store.records():
        key = record.meta.group_key()
        if key not in counts:
            order.append(key)
            counts[key] = 0
        counts[key] += 1
    return [(key, counts[key]) for key in order]
