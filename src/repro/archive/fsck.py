"""Archive integrity checking and repair (``repro archive fsck``).

The store's writes are individually crash-safe -- objects and the index
both go through :func:`repro.ioutil.atomic_write` (temp file + fsync +
rename), index rewrites serialize under the advisory lock -- but
*crash-safe* is not *damage-proof*.  A kill -9 between an object write
and its index append leaves an orphan object; disks flip bits under
content-addressed names; operators truncate files; other tools append
torn lines.  ``fsck`` is the auditor for all of it: every check
re-derives an invariant the store relies on, and ``--repair`` restores
each one without ever deleting the only copy of plausibly-real data
(corrupt objects are quarantined, not unlinked).

Issue kinds and their repairs:

======================  ==============================================
kind                    detection / repair
======================  ==============================================
``corrupt_object``      bad gzip magic, truncated stream, or payload
                        hashing differently from its filename; moved
                        to ``<root>/quarantine/`` on repair
``orphan_object``       valid object no run record references (the
                        crash-between-put-steps residue); deleted on
                        repair, exactly as ``gc`` would
``dangling_record``     run record whose object is missing or was just
                        quarantined, or tag record naming an unknown
                        run; dropped from the rebuilt index
``torn_index_line``     unparsable index line; rewritten away
======================  ==============================================

Repairs that touch the index rewrite it the way ``gc`` does: counter
high-water record first (run-id monotonicity survives even when the
records carrying the highest ids are dropped), then surviving run and
tag records, all under the index lock so concurrent ``put``/``gc``
serialize against the repair.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.archive.store import (
    GZIP_MAGIC,
    OBJECTS_DIR,
    QUARANTINE_DIR,
    ArchiveStore,
)

#: Every issue kind fsck can report, in severity order.
FSCK_ISSUE_KINDS = (
    "corrupt_object",
    "dangling_record",
    "orphan_object",
    "torn_index_line",
)


@dataclass
class FsckIssue:
    """One integrity violation, and what (if anything) was done about it."""

    kind: str
    detail: str
    sha256: Optional[str] = None
    run_id: Optional[str] = None
    repaired: bool = False
    #: ``quarantined`` | ``deleted`` | ``dropped`` | ``rewritten``
    action: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "sha256": self.sha256,
            "run_id": self.run_id,
            "repaired": self.repaired,
            "action": self.action,
        }


@dataclass
class FsckReport:
    """Everything one fsck pass found (and repaired)."""

    root: str
    repair: bool
    issues: List[FsckIssue] = field(default_factory=list)
    objects_checked: int = 0
    records_checked: int = 0
    index_rewritten: bool = False

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def unrepaired(self) -> List[FsckIssue]:
        return [issue for issue in self.issues if not issue.repaired]

    def counts(self) -> Dict[str, int]:
        by_kind: Dict[str, int] = {}
        for issue in self.issues:
            by_kind[issue.kind] = by_kind.get(issue.kind, 0) + 1
        return by_kind

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "repair": self.repair,
            "clean": self.clean,
            "objects_checked": self.objects_checked,
            "records_checked": self.records_checked,
            "index_rewritten": self.index_rewritten,
            "counts": self.counts(),
            "issues": [issue.to_dict() for issue in self.issues],
        }


# ----------------------------------------------------------------------
def _verify_object(path: str, expected_sha: str) -> Optional[str]:
    """None when the object is sound, else a human-readable defect."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        return f"unreadable: {exc}"
    if not blob:
        return "empty file"
    if blob[:2] != GZIP_MAGIC:
        return "missing gzip magic (torn or foreign write)"
    try:
        payload = gzip.decompress(blob)
    except (OSError, EOFError) as exc:
        return f"truncated/corrupt gzip stream: {exc}"
    actual = hashlib.sha256(payload).hexdigest()
    if actual != expected_sha:
        return f"content hashes to {actual[:12]}… (bit rot or tampering)"
    return None


def _quarantine(store: ArchiveStore, path: str, sha256: str) -> str:
    """Move a corrupt object aside; returns the quarantine path."""
    quarantine_root = os.path.join(store.root, QUARANTINE_DIR)
    os.makedirs(quarantine_root, exist_ok=True)
    target = os.path.join(quarantine_root, os.path.basename(path))
    serial = 0
    while os.path.exists(target):  # keep every distinct corpse
        serial += 1
        target = os.path.join(
            quarantine_root, f"{sha256}.{serial}.json.gz"
        )
    os.replace(path, target)
    return target


def _scan_objects(store: ArchiveStore) -> Tuple[Dict[str, str], List[Tuple[str, str, str]]]:
    """Walk objects/: returns ({sha: path} valid, [(sha, path, defect)])."""
    valid: Dict[str, str] = {}
    corrupt: List[Tuple[str, str, str]] = []
    objects_root = os.path.join(store.root, OBJECTS_DIR)
    for dirpath, _dirnames, filenames in os.walk(objects_root):
        for filename in sorted(filenames):
            if not filename.endswith(".json.gz"):
                continue
            sha256 = filename[: -len(".json.gz")]
            path = os.path.join(dirpath, filename)
            defect = _verify_object(path, sha256)
            if defect is None:
                valid[sha256] = path
            else:
                corrupt.append((sha256, path, defect))
    return valid, corrupt


def fsck(store: ArchiveStore, *, repair: bool = False) -> FsckReport:
    """Audit (and with ``repair=True`` restore) one archive's invariants.

    Runs entirely under the index lock so a concurrent ``put`` or
    ``gc`` serializes against the audit instead of racing it.
    """
    report = FsckReport(root=store.root, repair=repair)
    with store._locked():
        valid_objects, corrupt_objects = _scan_objects(store)
        report.objects_checked = len(valid_objects) + len(corrupt_objects)

        for sha256, path, defect in corrupt_objects:
            issue = FsckIssue(
                kind="corrupt_object",
                detail=f"object {sha256[:12]}… {defect}",
                sha256=sha256,
            )
            if repair:
                target = _quarantine(store, path, sha256)
                issue.repaired = True
                issue.action = "quarantined"
                issue.detail += f"; moved to {os.path.relpath(target, store.root)}"
            report.issues.append(issue)

        # ------------------------------------------------------------------
        # Index pass: raw lines, so torn lines and dangling records are
        # visible (store.records() silently skips both).
        run_entries: List[dict] = []
        tag_entries: List[dict] = []
        highest_serial = 0
        torn = 0
        for lineno, line in enumerate(store._read_index_lines(), start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except ValueError:
                torn += 1
                issue = FsckIssue(
                    kind="torn_index_line",
                    detail=f"index line {lineno} is not valid JSON "
                    f"({stripped[:40]!r}…)",
                )
                if repair:
                    issue.repaired = True
                    issue.action = "rewritten"
                report.issues.append(issue)
                continue
            kind = entry.get("type")
            if kind == "run":
                run_id = entry.get("run_id")
                if not isinstance(run_id, str) or not isinstance(
                    entry.get("sha256"), str
                ):
                    torn += 1
                    issue = FsckIssue(
                        kind="torn_index_line",
                        detail=f"index line {lineno}: run record missing "
                        f"run_id/sha256",
                    )
                    if repair:
                        issue.repaired = True
                        issue.action = "rewritten"
                    report.issues.append(issue)
                    continue
                if run_id[:1] == "r":
                    try:
                        highest_serial = max(highest_serial, int(run_id[1:]))
                    except ValueError:
                        pass
                run_entries.append(entry)
            elif kind == "tag":
                tag_entries.append(entry)
            elif kind == "counter":
                try:
                    highest_serial = max(
                        highest_serial, int(entry.get("last_run", 0))
                    )
                except (TypeError, ValueError):
                    pass
        report.records_checked = len(run_entries) + len(tag_entries)

        surviving_runs: List[dict] = []
        dropped_records = 0
        for entry in run_entries:
            if entry["sha256"] in valid_objects:
                surviving_runs.append(entry)
                continue
            dropped_records += 1
            if any(entry["sha256"] == sha for sha, _, _ in corrupt_objects):
                reason = (
                    "its object was quarantined as corrupt"
                    if repair
                    else "its object is corrupt"
                )
            else:
                reason = "its object is missing"
            issue = FsckIssue(
                kind="dangling_record",
                detail=f"run {entry['run_id']} references "
                f"{entry['sha256'][:12]}… but {reason}",
                sha256=entry["sha256"],
                run_id=entry["run_id"],
            )
            if repair:
                issue.repaired = True
                issue.action = "dropped"
            report.issues.append(issue)

        surviving_ids = {entry["run_id"] for entry in surviving_runs}
        surviving_tags: List[dict] = []
        for entry in tag_entries:
            if entry.get("run_id") in surviving_ids:
                surviving_tags.append(entry)
                continue
            dropped_records += 1
            issue = FsckIssue(
                kind="dangling_record",
                detail=f"tag record {entry.get('tag')!r} names unknown run "
                f"{entry.get('run_id')!r}",
                run_id=entry.get("run_id"),
            )
            if repair:
                issue.repaired = True
                issue.action = "dropped"
            report.issues.append(issue)

        referenced = {entry["sha256"] for entry in surviving_runs}
        for sha256 in sorted(valid_objects):
            if sha256 in referenced:
                continue
            issue = FsckIssue(
                kind="orphan_object",
                detail=f"object {sha256[:12]}… is referenced by no run "
                f"record (crash between object write and index append?)",
                sha256=sha256,
            )
            if repair:
                try:
                    os.unlink(valid_objects[sha256])
                    issue.repaired = True
                    issue.action = "deleted"
                except OSError as exc:  # pragma: no cover - fs failure
                    issue.detail += f"; delete failed: {exc}"
            report.issues.append(issue)

        if repair and (torn or dropped_records):
            # Rebuild the index like gc does: counter record first, so
            # run-id monotonicity survives dropping the newest records.
            entries: List[dict] = [{"type": "counter", "last_run": highest_serial}]
            entries.extend(surviving_runs)
            entries.extend(surviving_tags)
            text = "\n".join(
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                for entry in entries
            )
            from repro.ioutil import atomic_write

            atomic_write(store.index_path, text + "\n")
            report.index_rewritten = True
    return report
