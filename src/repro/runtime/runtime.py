"""The simulated OpenMP runtime: team orchestration and shared state.

One :class:`OpenMPRuntime` executes one parallel region -- the shape of
every BOTS kernel and of the paper's experiments, which measure exactly
the tasking kernel's parallel region.  All shared runtime state (the task
pool and its lock, barrier/single bookkeeping, instance ids) lives here;
the per-thread logic lives in :class:`~repro.runtime.thread.WorkerThread`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import RuntimeModelError, WatchdogTimeout
from repro.events.regions import Region, RegionRegistry, RegionType
from repro.events.stream import ProgramTrace
from repro.instrument.layer import BatchedInstrumentationLayer, InstrumentationLayer
from repro.profiling.profile import Profile
from repro.profiling.task_profiler import TaskProfiler
from repro.runtime.config import RuntimeConfig
from repro.runtime.directives import Spawn
from repro.runtime.queues import TaskPool
from repro.runtime.task import TaskInstance
from repro.runtime.thread import WorkerThread
from repro.sim.core import Environment
from repro.sim.process import Process
from repro.sim.rng import DeterministicRNG
from repro.sim.sync import Signal, SimLock


@dataclass
class ParallelResult:
    """Everything a finished parallel region reports."""

    region_name: str
    #: virtual duration of the region (the paper's "runtime of the
    #: parallel region, containing the tasking kernel")
    duration: float
    #: per-thread return values of the implicit task bodies
    return_values: List[Any]
    #: completed explicit task instances
    completed_tasks: int
    #: per-thread accounting buckets (work/mgmt/instr/idle/critical_wait)
    thread_stats: List[dict]
    pool_stats: dict
    lock_stats: dict
    events_dispatched: int
    downgraded_untied: int
    tasks_stolen: int
    profile: Optional[Profile] = None
    trace: Optional[ProgramTrace] = None
    #: ``{substrate name: artifact}`` for every attached measurement
    #: substrate (``profile`` and ``trace`` above are the two classic
    #: artifacts, kept as first-class fields for compatibility)
    substrate_artifacts: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)

    @property
    def kernel_time(self) -> float:
        """Alias used throughout the analysis layer."""
        return self.duration

    def total(self, bucket: str) -> float:
        """Sum one accounting bucket over all threads."""
        return sum(stats[bucket] for stats in self.thread_stats)


class OpenMPRuntime:
    """A simulated OpenMP 3.0 runtime executing one parallel region."""

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        registry: Optional[RegionRegistry] = None,
    ) -> None:
        self.config = config if config is not None else RuntimeConfig()
        self.costs = self.config.costs
        self.registry = registry if registry is not None else RegionRegistry()
        self.env = Environment()
        self.rng = DeterministicRNG(self.config.seed)

        # -- shared runtime state ---------------------------------------
        self.pool_lock = SimLock(self.env, "task-pool")
        self.state_signal = Signal(self.env)
        self.task_pool = TaskPool(
            self.config.n_threads,
            self.config.queue_policy,
            self.config.steal_policy,
            self.rng,
            tsc_enabled=self.config.tsc_enabled,
        )
        self.outstanding_tasks = 0
        self.completed_tasks = 0
        self.barrier_generation = 0
        self.barrier_arrivals = 0
        self.single_claims: Dict[tuple, int] = {}
        self.suspended_untied: List[TaskInstance] = []
        self.downgraded_untied = 0
        self._instance_counter = 0
        self._ran = False

        # -- shared region handles ---------------------------------------
        self.taskwait_region = self.registry.register("taskwait", RegionType.TASKWAIT)
        self.taskyield_region = self.registry.register("taskyield", RegionType.TASKYIELD)
        self.barrier_region = self.registry.register("barrier", RegionType.BARRIER)
        self.implicit_barrier_region = self.registry.register(
            "implicit barrier", RegionType.IMPLICIT_BARRIER
        )
        self._task_regions: Dict[str, Region] = {}
        self._create_regions: Dict[Region, Region] = {}
        self._single_regions: Dict[str, Region] = {}
        self._critical_regions: Dict[str, Region] = {}
        self._user_regions: Dict[str, Region] = {}
        self._critical_locks: Dict[str, SimLock] = {}

        # -- measurement --------------------------------------------------
        self.instr = InstrumentationLayer(enabled=False)
        self.profiler: Optional[TaskProfiler] = None
        self.trace: Optional[ProgramTrace] = None
        self.substrate_manager = None
        self._profiling_substrate = None

        # -- fault injection ----------------------------------------------
        # The faults package is only imported when a plan is armed, so
        # the common path never even pays the import.
        self.fault_injector = None
        if self.config.fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(self.config.fault_plan)

        # -- resource governor --------------------------------------------
        # Same lazy pattern: without a budget the governor package is
        # never imported and measurement is byte-identical to a build
        # without it.  ``memory_budget`` may be a MemoryBudget, a dict of
        # its fields, or a bare int (cap on live instance trees).
        self.governor = None
        if self.config.memory_budget is not None:
            from repro.governor import MemoryBudget, ResourceGovernor

            budget = self.config.memory_budget
            if isinstance(budget, int):
                budget = MemoryBudget(max_live_instances=budget)
            elif isinstance(budget, dict):
                budget = MemoryBudget.from_dict(budget)
            self.governor = ResourceGovernor(budget)

    # ------------------------------------------------------------------
    # Region management
    # ------------------------------------------------------------------
    def task_region_for(self, directive: Spawn) -> Region:
        name = directive.label or getattr(directive.fn, "__name__", "task")
        region = self._task_regions.get(name)
        if region is None:
            region = self.registry.register(name, RegionType.TASK)
            self._task_regions[name] = region
        return region

    def create_region_for(self, task_region: Region) -> Region:
        region = self._create_regions.get(task_region)
        if region is None:
            region = self.registry.register(
                f"create@{task_region.name}", RegionType.TASK_CREATE
            )
            self._create_regions[task_region] = region
        return region

    def single_region(self, name: str) -> Region:
        region = self._single_regions.get(name)
        if region is None:
            region = self.registry.register(name, RegionType.SINGLE)
            self._single_regions[name] = region
        return region

    def user_region(self, name: str) -> Region:
        region = self._user_regions.get(name)
        if region is None:
            region = self.registry.register(name, RegionType.PHASE)
            self._user_regions[name] = region
        return region

    def critical_region(self, name: str) -> Region:
        region = self._critical_regions.get(name)
        if region is None:
            region = self.registry.register(
                f"critical@{name}", RegionType.CRITICAL
            )
            self._critical_regions[name] = region
        return region

    def critical_lock(self, name: str) -> SimLock:
        lock = self._critical_locks.get(name)
        if lock is None:
            lock = SimLock(self.env, f"critical@{name}")
            self._critical_locks[name] = lock
        return lock

    # ------------------------------------------------------------------
    # Task creation
    # ------------------------------------------------------------------
    def new_task(self, directive: Spawn, parent: TaskInstance) -> TaskInstance:
        tied = directive.tied
        if not tied and not self.config.allow_untied:
            # Paper Section IV-D2: "our instrumentation makes all tasks
            # tied by default" because arbitrary interruption points are
            # not observable.
            tied = True
            self.downgraded_untied += 1
        self._instance_counter += 1
        task = TaskInstance(
            instance_id=self._instance_counter,
            region=self.task_region_for(directive),
            fn=directive.fn,
            args=directive.args,
            kwargs=directive.kwargs,
            parent=parent,
            tied=tied,
            parameter=directive.parameter,
            creation_time=self.env.now,
        )
        # final propagates down the task tree; a final ancestor, a false
        # if-clause, or an included parent makes the task included
        # (executed immediately, never queued).  Descendants of an
        # undeferred task are included too -- the documented
        # simplification (DESIGN.md E5): included tasks must not suspend,
        # so their taskwaits must be trivially satisfiable.
        task.final = directive.final or getattr(parent, "final", False)
        task.included = (
            task.final
            or not directive.if_clause
            or getattr(parent, "included", False)
        )
        if self.fault_injector is not None:
            self.fault_injector.on_new_task(task)
        if self.governor is not None:
            # Admission control at the task-creation scheduling point:
            # the governor re-evaluates pressure (and may raise
            # MemoryPressureStop) before the new task enters the pool.
            # Batched dispatch defers consumer state, so drain the event
            # batch first -- the governor's gauges (pool nodes, live
            # instances, event buffers) must reflect every event up to
            # this scheduling point, exactly as under per-event dispatch.
            self.instr.flush()
            self.governor.on_task_created(self.env.now)
        return task

    # ------------------------------------------------------------------
    # Measurement substrates
    # ------------------------------------------------------------------
    def _resolve_substrates(self) -> list:
        """The substrate instances this run should attach.

        ``config.substrates`` entries may be registry names or ready
        instances; when empty, the classic flags select the built-ins
        (``instrument`` -> profiling, ``record_events`` -> tracing).
        """
        config = self.config
        if config.substrates:
            from repro.substrates import get_substrate

            return [
                get_substrate(spec) if isinstance(spec, str) else spec
                for spec in config.substrates
            ]
        substrates: list = []
        if config.instrument:
            from repro.substrates.profiling import ProfilingSubstrate

            substrates.append(ProfilingSubstrate())
        if config.record_events:
            from repro.substrates.tracing import TracingSubstrate

            substrates.append(TracingSubstrate())
        return substrates

    def _setup_substrates(self, implicit_region: Region):
        """Build and initialize the run's substrate manager (or ``None``).

        Also re-exposes the two classic consumers as :attr:`profiler` and
        :attr:`trace` so downstream code (fault injection, salvage,
        analysis) keeps working unchanged.
        """
        substrates = self._resolve_substrates()
        if not substrates:
            return None
        from repro.substrates.governor import GovernorSubstrate
        from repro.substrates.manager import SubstrateManager
        from repro.substrates.profiling import ProfilingSubstrate
        from repro.substrates.tracing import TracingSubstrate

        if self.governor is not None and not any(
            isinstance(s, GovernorSubstrate) for s in substrates
        ):
            # An armed governor always reports through its substrate.
            substrates.append(GovernorSubstrate())
        for substrate in substrates:
            # The config-level depth limit applies unless the substrate
            # was constructed with an explicit one.
            if isinstance(substrate, ProfilingSubstrate):
                if substrate.max_call_path_depth is None:
                    substrate.max_call_path_depth = self.config.max_call_path_depth
                if substrate.governor is None:
                    substrate.governor = self.governor
            elif isinstance(substrate, GovernorSubstrate):
                if substrate.governor is None:
                    substrate.governor = self.governor
        manager = SubstrateManager(substrates)
        manager.initialize(
            self.registry, self.config.n_threads, self.env.now, implicit_region
        )
        self.substrate_manager = manager
        profiling = manager.find(ProfilingSubstrate)
        tracing = manager.find(TracingSubstrate)
        self._profiling_substrate = profiling
        self.profiler = profiling.profiler if profiling is not None else None
        self.trace = tracing.trace if tracing is not None else None
        from repro.substrates.recorder import RecorderSubstrate

        recorder = manager.find(RecorderSubstrate)
        if recorder is not None and self.profiler is not None:
            # Checkpoints snapshot the live profiler; injected here
            # because the profiler only exists after manager init.
            recorder.profiler = self.profiler
        if self.governor is not None and self.trace is not None:
            trace = self.trace
            self.governor.attach_gauge(
                "event_buffer", lambda: sum(len(s) for s in trace.streams)
            )
        return manager

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def parallel(
        self, body_fn, *args: Any, name: str = "parallel", **kwargs: Any
    ) -> ParallelResult:
        """Run ``body_fn(ctx, *args, **kwargs)`` on every team thread.

        ``body_fn`` is a generator function (it may also be a plain
        function if it has no scheduling points).  Returns the
        :class:`ParallelResult`; when instrumentation is enabled the
        result carries the task-aware :class:`~repro.profiling.profile.Profile`.
        """
        if self._ran:
            raise RuntimeModelError(
                "this OpenMPRuntime already executed its parallel region; "
                "create a new runtime per region"
            )
        self._ran = True
        n = self.config.n_threads
        implicit_region = self.registry.register(name, RegionType.IMPLICIT_TASK)

        # Measurement setup: resolve the configured consumers into a
        # substrate manager (Score-P substrate architecture).  The empty
        # default derives the classic wiring from the instrument /
        # record_events flags, so the event sequence each consumer sees --
        # and therefore the cube output -- is identical to the historical
        # direct profiler/recorder wiring.
        manager = self._setup_substrates(implicit_region)
        if manager is not None:
            base_cost = self.costs.instr_event_us if self.config.instrument else 0.0
            region_filter = (
                self.config.measurement_filter if self.config.instrument else None
            )
            if self.config.batch_events:
                # The columnar hot path: events fill a struct-of-arrays
                # batch that drains through manager.on_batch at
                # scheduling-point boundaries.  Event sequence and cube
                # output are byte-identical to the per-event layer.
                self.instr = BatchedInstrumentationLayer(
                    enabled=True,
                    per_event_cost=base_cost + manager.extra_cost_per_event,
                    listener=manager,
                    region_filter=region_filter,
                    registry=self.registry,
                    flush_threshold=self.config.batch_flush_threshold,
                    capacity=self.config.batch_capacity,
                )
            else:
                self.instr = InstrumentationLayer(
                    enabled=True,
                    per_event_cost=base_cost + manager.extra_cost_per_event,
                    listener=manager,
                    region_filter=region_filter,
                )
            self.instr.phase_begin(name)

        injector = self.fault_injector
        if (
            injector is not None
            and self.trace is not None
            and injector.plan.wants_stream_faults
        ):
            self.trace.attach_injector(injector)

        # Team setup: one implicit task + worker per thread.
        implicit_tasks = [
            TaskInstance(
                instance_id=-(t + 1),
                region=implicit_region,
                fn=body_fn,
                args=args,
                kwargs=kwargs,
                parent=None,
            )
            for t in range(n)
        ]
        workers = [WorkerThread(self, t, implicit_tasks[t]) for t in range(n)]
        for worker in workers:
            Process(self.env, worker.process(), name=f"thread-{worker.id}")

        start = self.env.now
        watchdog = self.config.watchdog_us
        if watchdog is None:
            self.env.run()
        else:
            self.env.run(until=start + watchdog)
            if self.env.pending():
                raise WatchdogTimeout(
                    f"parallel region {name!r} exceeded its watchdog deadline "
                    f"of {watchdog:g} virtual µs with {self.env.pending()} "
                    f"event(s) still queued (blocked: {self.env.blocked_report()})"
                )
        duration = self.env.now - start

        if injector is not None and self.trace is not None:
            # Events still withheld for reordering surface at the end --
            # after the final batch drains, so they land behind every
            # recorded event just as under per-event dispatch.
            self.instr.flush()
            for event in injector.drain():
                self.trace.streams[event.thread_id].append_unchecked(event)

        if self.outstanding_tasks != 0:  # pragma: no cover - invariant
            raise RuntimeModelError(
                f"region finished with {self.outstanding_tasks} outstanding tasks"
            )

        profile: Optional[Profile] = None
        substrate_artifacts: Dict[str, Any] = {}
        substrate_report: Dict[str, dict] = {}
        if manager is not None:
            self.instr.phase_end(name)
            self.instr.finish(self.env.now)
            substrate_artifacts = manager.artifacts()
            substrate_report = manager.report()
            if self._profiling_substrate is not None:
                profile = self._profiling_substrate.artifact()
            if manager.incidents and profile is not None:
                # Route quarantines through the salvage machinery: the
                # profile stays usable but carries the what-went-missing
                # ledger (notes alone do not mark it partial).
                if profile.salvage is None:
                    from repro.profiling.salvage import SalvageReport

                    profile.salvage = SalvageReport()
                for incident in manager.incidents:
                    profile.salvage.note(str(incident))
            if (
                self.governor is not None
                and self.governor.incidents
                and profile is not None
            ):
                # Ladder transitions travel with the profile: degraded
                # numbers must never be mistaken for full-fidelity ones.
                if profile.salvage is None:
                    from repro.profiling.salvage import SalvageReport

                    profile.salvage = SalvageReport()
                if not profile.salvage.pressure_incidents:
                    profile.salvage.pressure_incidents.extend(
                        i.to_dict() for i in self.governor.incidents
                    )

        return ParallelResult(
            region_name=name,
            duration=duration,
            return_values=[t.result for t in implicit_tasks],
            completed_tasks=self.completed_tasks,
            thread_stats=[dict(w.stats) for w in workers],
            pool_stats=self.task_pool.stats(),
            lock_stats={
                "acquisitions": self.pool_lock.acquisitions,
                "contended": self.pool_lock.contended_acquisitions,
            },
            events_dispatched=self.instr.events_dispatched,
            downgraded_untied=self.downgraded_untied,
            extra={
                "truncated_enters": (
                    self.profiler.truncated_enters if self.profiler else 0
                ),
                **(
                    {"substrates": substrate_report} if substrate_report else {}
                ),
                **(
                    {"fault_injection": injector.summary()}
                    if injector is not None
                    else {}
                ),
                **(
                    {"governor": self.governor.report()}
                    if self.governor is not None
                    else {}
                ),
            },
            tasks_stolen=sum(w.tasks_stolen for w in workers),
            profile=profile,
            trace=self.trace,
            substrate_artifacts=substrate_artifacts,
        )


def run_parallel(
    body_fn,
    *args: Any,
    config: Optional[RuntimeConfig] = None,
    name: str = "parallel",
    **kwargs: Any,
) -> ParallelResult:
    """One-shot convenience: build a runtime, run the region, return result."""
    runtime = OpenMPRuntime(config)
    return runtime.parallel(body_fn, *args, name=name, **kwargs)
