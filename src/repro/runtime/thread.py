"""The simulated worker thread: one per team member.

A worker thread is one simulation process.  It executes its implicit task
body, interprets directives at task scheduling points, runs the task
scheduler inside taskwaits and barriers, and reports every measurement
event through the instrumentation layer.

Time accounting buckets (per thread, virtual µs):

* ``work``    -- Compute directives (the application's useful work),
* ``mgmt``    -- task management: allocation, queue operations including
  lock waiting, switches, completion bookkeeping, barrier arrival,
* ``instr``   -- instrumentation events (zero when measurement is off),
* ``idle``    -- blocked on the state signal with nothing to run,
* ``critical_wait`` -- waiting to enter critical sections.

The split is what the overhead analysis consumes: the paper's observation
that "instrumentation shifts some of the overhead from the OpenMP runtime
system to the profiling system" shows up as ``instr`` time displacing
``mgmt`` lock-wait time when tasks are tiny and threads are many.
"""

from __future__ import annotations

from types import GeneratorType
from typing import Optional, Tuple

from repro.errors import RuntimeModelError
from repro.events.model import implicit_instance_id
from repro.events.regions import Region
from repro.runtime.context import TaskContext
from repro.runtime.directives import (
    Barrier,
    Compute,
    CriticalBegin,
    CriticalEnd,
    RegionBegin,
    RegionEnd,
    Single,
    Spawn,
    Taskwait,
    TaskYield,
)
from repro.runtime.task import TaskInstance, TaskState
from repro.sim.process import Timeout


class WorkerThread:
    """One simulated team member; `process()` is its sim-process body."""

    def __init__(self, runtime, thread_id: int, implicit_task: TaskInstance) -> None:
        self.rt = runtime
        self.id = thread_id
        self.implicit = implicit_task
        #: tied tasks suspended on this thread (TSC reference set)
        self.suspended_tied: list[TaskInstance] = []
        self.current: TaskInstance = implicit_task
        self.stats = {
            "work": 0.0,
            "mgmt": 0.0,
            "instr": 0.0,
            "idle": 0.0,
            "critical_wait": 0.0,
        }
        #: per-single-site occurrence counters (single claims are keyed
        #: by (site, occurrence) so singles inside loops pair up correctly)
        self._single_counters: dict = {}
        #: tasks executed (fresh dispatches) by this thread
        self.tasks_executed = 0
        self.tasks_stolen = 0

    # ------------------------------------------------------------------
    # Small cost/emission helpers
    # ------------------------------------------------------------------
    def _pay(self, us: float, bucket: str):
        """Charge ``us`` virtual time into an accounting bucket."""
        if us > 0.0:
            self.stats[bucket] += us
            yield Timeout(us)

    def _emit_enter(self, region: Region, parameter: Optional[tuple] = None):
        rt = self.rt
        cost = rt.instr.region_cost(region)
        if cost:
            self.stats["instr"] += cost
            yield Timeout(cost)
        rt.instr.enter(self.id, region, rt.env.now, parameter)

    def _emit_exit(self, region: Region):
        rt = self.rt
        cost = rt.instr.region_cost(region)
        if cost:
            self.stats["instr"] += cost
            yield Timeout(cost)
        rt.instr.exit(self.id, region, rt.env.now)

    def _emit_task_begin(self, task: TaskInstance):
        rt = self.rt
        cost = rt.instr.cost
        if cost:
            self.stats["instr"] += cost
            yield Timeout(cost)
        rt.instr.task_begin(
            self.id, task.region, task.instance_id, rt.env.now, task.parameter
        )

    def _emit_task_end(self, task: TaskInstance):
        rt = self.rt
        cost = rt.instr.cost
        if cost:
            self.stats["instr"] += cost
            yield Timeout(cost)
        rt.instr.task_end(self.id, task.region, task.instance_id, rt.env.now)

    def _emit_task_switch(self, instance_id: int):
        rt = self.rt
        cost = rt.instr.cost
        if cost:
            self.stats["instr"] += cost
            yield Timeout(cost)
        rt.instr.task_switch(self.id, instance_id, rt.env.now)

    def _locked(self, base_cost: float):
        """Acquire the pool lock and charge the contention-scaled hold.

        The caller mutates shared state right after (still holding the
        lock) and must call :meth:`_unlock`.  Both queueing delay and the
        scaled hold are accounted as management time.
        """
        rt = self.rt
        lock = rt.pool_lock
        t0 = rt.env.now
        yield lock.acquire()
        wait = rt.env.now - t0
        costs = rt.costs
        hold = (
            base_cost
            * (1.0 + costs.coherence_beta * (rt.config.n_threads - 1))
            * (1.0 + costs.contention_alpha * lock.waiter_count)
        )
        self.stats["mgmt"] += wait + hold
        if hold > 0.0:
            yield Timeout(hold)

    def _unlock(self, wake: bool = False) -> None:
        self.rt.pool_lock.release()
        if wake:
            self.rt.state_signal.fire()

    # ------------------------------------------------------------------
    # Main process
    # ------------------------------------------------------------------
    def process(self):
        rt = self.rt
        yield from self._pay(rt.costs.parallel_fork_us, "mgmt")
        self.implicit.state = TaskState.RUNNING
        self.implicit.executing_thread = self.id
        self.implicit.owner_thread = self.id
        status = yield from self._run_fragment(self.implicit)
        if status != "completed":
            raise RuntimeModelError(
                f"implicit task of thread {self.id} suspended -- implicit "
                "tasks must handle taskwait inline (internal error)"
            )
        self.implicit.state = TaskState.COMPLETED
        # End-of-region implicit barrier: remaining tasks execute here.
        yield from self._barrier(rt.implicit_barrier_region)
        yield from self._pay(rt.costs.parallel_join_us, "mgmt")

    # ------------------------------------------------------------------
    # Fragment execution
    # ------------------------------------------------------------------
    def _run_fragment(self, task: TaskInstance) -> "GeneratorType":
        """Drive ``task``'s generator until completion or suspension.

        Returns ``'completed'`` or ``'suspended'`` (explicit tasks only).
        """
        rt = self.rt
        gen = task.generator
        if gen is None:
            ctx = TaskContext(rt, task)
            if task.injected_fault is not None:
                produced = rt.fault_injector.faulty_body(ctx, task)
            else:
                produced = task.fn(ctx, *task.args, **task.kwargs)
            if not isinstance(produced, GeneratorType):
                # A plain function: no scheduling points, result immediate.
                task.result = produced
                return "completed"
            gen = task.generator = produced
        if task.resume_exit_region is not None:
            # We suspended inside a taskwait; de-registering the
            # suspension is locked runtime work that is measured inside
            # the still-open taskwait region, then the region closes.
            region, task.resume_exit_region = task.resume_exit_region, None
            yield from self._locked(rt.costs.task_switch_us)
            self._unlock()
            yield from self._emit_exit(region)
        send = task.pending_send
        task.pending_send = None
        while True:
            try:
                directive = gen.send(send)
            except StopIteration as stop:
                task.result = stop.value
                return "completed"
            send = None
            kind = type(directive)
            if kind is Compute:
                self.stats["work"] += directive.us
                if directive.us > 0.0:
                    yield Timeout(directive.us)
                if directive.counters:
                    rt.instr.metric(self.id, directive.counters, rt.env.now)
            elif kind is Spawn:
                send = yield from self._spawn(task, directive)
            elif kind is Taskwait:
                outcome = yield from self._taskwait(task)
                if outcome == "suspended":
                    return "suspended"
            elif kind is TaskYield:
                outcome = yield from self._taskyield(task)
                if outcome == "suspended":
                    return "suspended"
            elif kind is Barrier:
                if task.is_explicit:
                    raise RuntimeModelError(
                        "barrier yielded from an explicit task; OpenMP "
                        "forbids barriers in explicit tasks"
                    )
                yield from self._barrier(rt.barrier_region)
            elif kind is Single:
                send = yield from self._single(task, directive)
            elif kind is CriticalBegin:
                yield from self._critical_begin(directive)
            elif kind is CriticalEnd:
                yield from self._critical_end(directive)
            elif kind is RegionBegin:
                yield from self._emit_enter(
                    rt.user_region(directive.name), directive.parameter
                )
            elif kind is RegionEnd:
                yield from self._emit_exit(rt.user_region(directive.name))
            else:
                raise RuntimeModelError(
                    f"task yielded {directive!r}; expected a runtime directive "
                    "built via TaskContext"
                )

    # ------------------------------------------------------------------
    # Directive handlers
    # ------------------------------------------------------------------
    def _spawn(self, parent: TaskInstance, directive: Spawn):
        rt = self.rt
        task = rt.new_task(directive, parent)
        create_region = rt.create_region_for(task.region)
        yield from self._emit_enter(create_region)
        yield from self._pay(rt.costs.task_alloc_us, "mgmt")
        if task.included:
            # Undeferred/included task (if-clause false or final): the
            # encountering thread executes it right here, no queueing.
            yield from self._emit_exit(create_region)
            yield from self._run_included(task)
            return task.handle
        yield from self._locked(rt.costs.enqueue_us)
        parent.outstanding_children += 1
        rt.outstanding_tasks += 1
        rt.task_pool.push(self.id, task)
        self._unlock(wake=True)
        yield from self._emit_exit(create_region)
        return task.handle

    def _run_included(self, task: TaskInstance):
        """Execute an included task inline, within the creating task.

        Included tasks (and, by construction, all their descendants) never
        queue and never suspend -- their taskwaits are trivially satisfied
        because their own children execute eagerly at the spawn point.
        The profiler still sees full TaskBegin/TaskEnd bracketing, so the
        instance appears in the task trees like any other.
        """
        rt = self.rt
        parent = self.current
        task.state = TaskState.RUNNING
        task.executing_thread = self.id
        task.owner_thread = self.id
        self.current = task
        self.tasks_executed += 1
        yield from self._pay(rt.costs.task_switch_us, "mgmt")
        yield from self._emit_task_begin(task)
        status = yield from self._run_fragment(task)
        if status != "completed":  # pragma: no cover - guarded by design
            raise RuntimeModelError(
                f"included task {task.instance_id} suspended; included tasks "
                "cannot suspend"
            )
        task.state = TaskState.COMPLETED
        task.executing_thread = None
        rt.completed_tasks += 1
        yield from self._emit_task_end(task)
        self.current = parent
        if parent is not None and parent.is_explicit:
            # Resume the creating task's measurement (TaskEnd switched the
            # profiler back to the implicit task).
            yield from self._emit_task_switch(parent.instance_id)

    def _taskwait(self, task: TaskInstance):
        rt = self.rt
        region = rt.taskwait_region
        yield from self._emit_enter(region)
        yield from self._pay(rt.costs.taskwait_us, "mgmt")
        if task.children_complete():
            yield from self._emit_exit(region)
            return "done"
        if task.is_implicit:
            # The implicit task schedules other tasks while it waits.
            yield from self._schedule_until(task.children_complete)
            yield from self._emit_exit(region)
            return "done"
        # Explicit task: suspend at this scheduling point.  Registering
        # the suspension touches shared runtime state, so it goes through
        # the pool lock -- this is what makes taskwait time grow with
        # thread count in the paper's Table III ("the management time for
        # task completion and task switches is attributed to these
        # regions").
        yield from self._locked(rt.costs.task_switch_us)
        task.state = TaskState.SUSPENDED
        task.waiting_in_taskwait = True
        task.resume_exit_region = region
        if task.tied:
            self.suspended_tied.append(task)
        else:
            rt.suspended_untied.append(task)
        self._unlock()
        yield from self._emit_task_switch(implicit_instance_id(self.id))
        return "suspended"

    def _taskyield(self, task: TaskInstance):
        """OpenMP 3.1 taskyield: let queued tasks run before continuing.

        A no-op for implicit tasks (their scheduling points already run
        the scheduler) and when nothing is queued.  Otherwise the task is
        suspended at low priority: the thread prefers queued/stolen tasks
        and resumes the yielded task when nothing else is runnable.
        """
        rt = self.rt
        if task.is_implicit or task.included or rt.task_pool.total_size() == 0:
            # Implicit tasks schedule at their own points; included tasks
            # must not suspend (their descendants ran eagerly anyway).
            return "done"
        region = rt.taskyield_region
        yield from self._emit_enter(region)
        yield from self._locked(rt.costs.task_switch_us)
        task.state = TaskState.SUSPENDED
        task.yielded = True
        task.resume_exit_region = region
        if task.tied:
            self.suspended_tied.append(task)
        else:
            rt.suspended_untied.append(task)
        self._unlock()
        yield from self._emit_task_switch(implicit_instance_id(self.id))
        return "suspended"

    def _barrier(self, region: Region):
        rt = self.rt
        yield from self._emit_enter(region)
        my_generation = rt.barrier_generation
        yield from self._locked(rt.costs.barrier_us)
        rt.barrier_arrivals += 1
        self._unlock(wake=True)

        def barrier_done() -> bool:
            if rt.barrier_generation > my_generation:
                return True
            if (
                rt.barrier_arrivals >= rt.config.n_threads
                and rt.outstanding_tasks == 0
            ):
                # First thread to observe completion releases the team.
                rt.barrier_generation += 1
                rt.barrier_arrivals = 0
                rt.state_signal.fire()
                return True
            return False

        yield from self._schedule_until(barrier_done)
        yield from self._emit_exit(region)

    def _single(self, task: TaskInstance, directive: Single):
        rt = self.rt
        if task.is_explicit:
            raise RuntimeModelError("single construct inside an explicit task")
        occurrence = self._single_counters.get(directive.name, 0)
        self._single_counters[directive.name] = occurrence + 1
        key = (directive.name, occurrence)
        region = rt.single_region(directive.name)
        yield from self._emit_enter(region)
        yield from self._locked(rt.costs.single_us)
        won = key not in rt.single_claims
        if won:
            rt.single_claims[key] = self.id
        self._unlock()
        yield from self._emit_exit(region)
        return won

    def _critical_begin(self, directive: CriticalBegin):
        rt = self.rt
        region = rt.critical_region(directive.name)
        lock = rt.critical_lock(directive.name)
        yield from self._emit_enter(region)
        t0 = rt.env.now
        yield lock.acquire()
        self.stats["critical_wait"] += rt.env.now - t0
        yield from self._pay(rt.costs.critical_us, "mgmt")

    def _critical_end(self, directive: CriticalEnd):
        rt = self.rt
        lock = rt.critical_lock(directive.name)
        lock.release()
        yield from self._emit_exit(rt.critical_region(directive.name))

    # ------------------------------------------------------------------
    # Task scheduling
    # ------------------------------------------------------------------
    def _schedule_until(self, condition):
        """Execute tasks (or idle) until ``condition()`` holds."""
        rt = self.rt
        # Entering the task scheduler is a scheduling point: give the
        # batched instrumentation layer a chance to drain, so consumers
        # (governor gauges, online validation) are caught up before this
        # thread potentially idles for a long virtual stretch.  A no-op
        # on the per-event layer and below the soft threshold.
        rt.instr.sched_point()
        while not condition():
            task, fresh = yield from self._find_task()
            if task is not None:
                yield from self._dispatch(task, fresh)
                continue
            if condition():
                break
            t0 = rt.env.now
            yield rt.state_signal.wait()
            self.stats["idle"] += rt.env.now - t0

    def _find_task(self) -> Tuple[Optional[TaskInstance], bool]:
        """Next task to run: resume > local pop > steal.

        Returns ``(task, fresh)`` where ``fresh`` marks a never-executed
        task (TaskBegin) versus a resumption (TaskSwitch).
        """
        rt = self.rt
        # 1) Resume a tied task suspended on this thread whose wait is over.
        for task in self.suspended_tied:
            if task.waiting_in_taskwait and task.children_complete():
                self.suspended_tied.remove(task)
                task.waiting_in_taskwait = False
                return task, False
        # 1b) Resume an untied task from the shared pool (any thread may).
        for task in rt.suspended_untied:
            if task.waiting_in_taskwait and task.children_complete():
                rt.suspended_untied.remove(task)
                task.waiting_in_taskwait = False
                return task, False
        # 2) Pop from the local queue (cheap unlocked emptiness pre-check,
        #    as real runtimes do before touching the shared structure).
        if rt.task_pool.local_size(self.id) > 0:
            yield from self._locked(rt.costs.dequeue_us)
            task = rt.task_pool.pop_local(self.id, self.suspended_tied)
            self._unlock()
            if task is not None:
                return task, True
        # 3) Steal.
        if rt.config.steal and rt.task_pool.total_size() > 0:
            yield from self._locked(rt.costs.steal_us)
            task = rt.task_pool.steal(self.id, self.suspended_tied)
            self._unlock()
            if task is not None:
                self.tasks_stolen += 1
                return task, True
        # 4) Resume a yielded task (taskyield gives queued tasks priority;
        #    once nothing is queued or stealable, the yielder continues).
        for task in self.suspended_tied:
            if task.yielded:
                self.suspended_tied.remove(task)
                task.yielded = False
                return task, False
        for task in rt.suspended_untied:
            if task.yielded:
                rt.suspended_untied.remove(task)
                task.yielded = False
                return task, False
        return None, False

    def _dispatch(self, task: TaskInstance, fresh: bool):
        """Run one fragment of an explicit task, then settle its fate."""
        rt = self.rt
        task.state = TaskState.RUNNING
        task.executing_thread = self.id
        previous = self.current
        self.current = task
        yield from self._pay(rt.costs.task_switch_us, "mgmt")
        if fresh:
            task.owner_thread = self.id
            self.tasks_executed += 1
            yield from self._emit_task_begin(task)
        else:
            yield from self._emit_task_switch(task.instance_id)
        status = yield from self._run_fragment(task)
        self.current = previous
        if status == "completed":
            task.state = TaskState.COMPLETED
            task.executing_thread = None
            yield from self._emit_task_end(task)
            yield from self._locked(rt.costs.task_complete_us)
            rt.outstanding_tasks -= 1
            rt.completed_tasks += 1
            if task.parent is not None:
                task.parent.outstanding_children -= 1
            self._unlock(wake=True)
        else:
            # Suspension bookkeeping already happened inside _taskwait.
            task.executing_thread = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WorkerThread {self.id}>"
