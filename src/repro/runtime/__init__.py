"""Simulated OpenMP 3.0 runtime.

A deterministic, virtual-time model of an OpenMP runtime with tasking:

* parallel regions with a team of simulated threads (one simulation
  process each),
* explicit tasks (tied by default, untied opt-in) expressed as Python
  generator functions whose ``yield``\\ s are the task scheduling points,
* ``taskwait``/barriers that execute queued tasks while waiting,
* work-first or breadth-first ready queues with work stealing,
* the OpenMP Task Scheduling Constraint for tied tasks,
* a cost model (:mod:`repro.runtime.costs`) under which task management
  contends on a global pool lock -- the mechanism behind the paper's
  overhead observations.

See :class:`~repro.runtime.runtime.OpenMPRuntime` and
:class:`~repro.runtime.context.TaskContext` for the public surface.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.costs import CostModel, JUROPA_LIKE, ZERO_COST
from repro.runtime.context import TaskContext
from repro.runtime.directives import (
    Barrier,
    Compute,
    CriticalBegin,
    CriticalEnd,
    Single,
    Spawn,
    Taskwait,
    TaskYield,
)
from repro.runtime.runtime import OpenMPRuntime, ParallelResult, run_parallel
from repro.runtime.task import TaskHandle, TaskInstance, TaskState

__all__ = [
    "RuntimeConfig",
    "CostModel",
    "JUROPA_LIKE",
    "ZERO_COST",
    "TaskContext",
    "Compute",
    "Spawn",
    "Taskwait",
    "TaskYield",
    "Barrier",
    "Single",
    "CriticalBegin",
    "CriticalEnd",
    "OpenMPRuntime",
    "ParallelResult",
    "run_parallel",
    "TaskHandle",
    "TaskInstance",
    "TaskState",
]
