"""The virtual-time cost model of the simulated OpenMP runtime.

All constants are virtual microseconds.  The defaults are calibrated so
that the *relative* magnitudes of the paper's Juropa/libgomp measurements
come out: µs-scale task management actions, a per-event instrumentation
cost a few times smaller than a typical management action, and a lock
contention factor that makes management time grow superlinearly with
thread count (the paper's Table III: task-creation time grows ~20x from
1 to 8 threads while the task body time stays flat).

Contention model
----------------
Management actions that touch shared runtime state (enqueue, dequeue,
steal, completion bookkeeping, barrier arrival) execute under one global
pool lock.  The *hold* time of an action scales with the number of
waiters queued behind the lock::

    hold = base * (1 + contention_alpha * waiters)

which models cache-line ping-pong and retry traffic of a contended lock.
Queueing delay then compounds on top, so the *observed* latency of a
management action grows superlinearly in the number of actively competing
threads -- exactly the behaviour the paper attributes to "necessary
locking during access to internal data structures" (Section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Virtual-time costs of runtime and instrumentation actions (µs)."""

    # -- task management (locked actions marked [L]) --------------------
    task_alloc_us: float = 0.30  # descriptor allocation/init, unlocked
    enqueue_us: float = 0.20  # [L] push task into the pool
    dequeue_us: float = 0.20  # [L] pop task from the pool
    steal_us: float = 0.40  # [L] steal probe + pop from a victim
    task_switch_us: float = 0.15  # save/restore task context, unlocked
    task_complete_us: float = 0.25  # [L] completion bookkeeping
    taskwait_us: float = 0.10  # taskwait bookkeeping, unlocked
    barrier_us: float = 0.30  # [L] barrier arrival bookkeeping
    single_us: float = 0.10  # [L] single-construct claim
    critical_us: float = 0.10  # critical enter/exit bookkeeping
    parallel_fork_us: float = 2.0  # spawning the team, per thread
    parallel_join_us: float = 2.0  # joining the team, per thread

    # -- contention ------------------------------------------------------
    #: lock hold-time scaling per queued waiter (see module docstring)
    contention_alpha: float = 0.75
    #: hold-time scaling per *additional team thread*: models cache-line
    #: transfer cost of the shared runtime state, which grows with the
    #: number of sharers even when the lock is momentarily uncontended.
    #: hold = base * (1 + coherence_beta*(T-1)) * (1 + contention_alpha*waiters)
    coherence_beta: float = 0.5

    # -- measurement -----------------------------------------------------
    #: cost of one instrumentation event when measurement is enabled
    instr_event_us: float = 0.45

    def scaled(self, factor: float) -> "CostModel":
        """A model with every *management* cost multiplied by ``factor``.

        Instrumentation cost and contention alpha are left untouched;
        used by ablation benchmarks.
        """
        return replace(
            self,
            task_alloc_us=self.task_alloc_us * factor,
            enqueue_us=self.enqueue_us * factor,
            dequeue_us=self.dequeue_us * factor,
            steal_us=self.steal_us * factor,
            task_switch_us=self.task_switch_us * factor,
            task_complete_us=self.task_complete_us * factor,
            taskwait_us=self.taskwait_us * factor,
            barrier_us=self.barrier_us * factor,
            single_us=self.single_us * factor,
            critical_us=self.critical_us * factor,
        )

    def with_instrumentation_cost(self, instr_event_us: float) -> "CostModel":
        return replace(self, instr_event_us=instr_event_us)

    def without_contention(self) -> "CostModel":
        return replace(self, contention_alpha=0.0, coherence_beta=0.0)


#: Default model used by all paper-reproduction experiments.
JUROPA_LIKE = CostModel()

#: Free runtime: isolates algorithmic behaviour from cost modelling;
#: useful in unit tests where exact virtual times are asserted.
ZERO_COST = CostModel(
    task_alloc_us=0.0,
    enqueue_us=0.0,
    dequeue_us=0.0,
    steal_us=0.0,
    task_switch_us=0.0,
    task_complete_us=0.0,
    taskwait_us=0.0,
    barrier_us=0.0,
    single_us=0.0,
    critical_us=0.0,
    parallel_fork_us=0.0,
    parallel_join_us=0.0,
    contention_alpha=0.0,
    coherence_beta=0.0,
    instr_event_us=0.0,
)
