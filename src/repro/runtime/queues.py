"""Ready-task queues with work-first/breadth-first policies and stealing.

One deque per thread.  Logical structure mirrors libgomp-era runtimes:

* **push**: a newly created task goes to the creating thread's deque.
* **pop** (local): work-first (``'lifo'``) takes the newest local task,
  breadth-first (``'fifo'``) the oldest.
* **steal**: an idle thread takes the *oldest* task of a victim with a
  non-empty deque; the victim is chosen randomly or by sequential scan.

All operations respect the Task Scheduling Constraint: tasks that the
popping/stealing thread may not start (because of its suspended tied
tasks) are skipped, not lost.

The queue structure itself carries no locking -- callers serialize through
the runtime's pool lock, which is where the simulated contention arises.
"""

from __future__ import annotations

from typing import List, Optional

from repro.runtime import tsc
from repro.runtime.task import TaskInstance
from repro.sim.rng import DeterministicRNG


class TaskPool:
    """Per-thread ready deques behind a single logical pool."""

    def __init__(
        self,
        n_threads: int,
        queue_policy: str,
        steal_policy: str,
        rng: DeterministicRNG,
        tsc_enabled: bool = True,
    ) -> None:
        self.n_threads = n_threads
        self.queue_policy = queue_policy
        self.steal_policy = steal_policy
        self.rng = rng
        self.tsc_enabled = tsc_enabled
        self._queues: List[List[TaskInstance]] = [[] for _ in range(n_threads)]
        # statistics
        self.pushes = 0
        self.pops = 0
        self.steals = 0
        self.failed_steals = 0

    # ------------------------------------------------------------------
    def push(self, thread_id: int, task: TaskInstance) -> None:
        self._queues[thread_id].append(task)
        self.pushes += 1

    def pop_local(self, thread_id: int, suspended_tied) -> Optional[TaskInstance]:
        """Take the next TSC-eligible task from the thread's own deque."""
        queue = self._queues[thread_id]
        if not queue:
            return None
        from_end = self.queue_policy == "lifo"
        if self.tsc_enabled:
            index = tsc.eligible_index(queue, suspended_tied, from_end)
            if index < 0:
                return None
        else:
            index = len(queue) - 1 if from_end else 0
        task = queue.pop(index)
        self.pops += 1
        return task

    def steal(self, thief_id: int, suspended_tied) -> Optional[TaskInstance]:
        """Take the oldest eligible task from some other thread's deque."""
        victims = [
            t for t in range(self.n_threads) if t != thief_id and self._queues[t]
        ]
        if not victims:
            return None
        if self.steal_policy == "random":
            order = self.rng.shuffled(victims)
        else:
            order = sorted(victims)
        for victim in order:
            queue = self._queues[victim]
            if self.tsc_enabled:
                index = tsc.eligible_index(queue, suspended_tied, from_end=False)
                if index < 0:
                    continue
            else:
                index = 0
            task = queue.pop(index)
            self.steals += 1
            return task
        self.failed_steals += 1
        return None

    # ------------------------------------------------------------------
    def local_size(self, thread_id: int) -> int:
        return len(self._queues[thread_id])

    def total_size(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def empty(self) -> bool:
        return all(not q for q in self._queues)

    def stats(self) -> dict:
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "steals": self.steals,
            "failed_steals": self.failed_steals,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sizes = [len(q) for q in self._queues]
        return f"<TaskPool {self.queue_policy} sizes={sizes}>"
