"""The user-facing task context.

Task bodies (and parallel-region bodies) receive a :class:`TaskContext`
as their first argument and build directives through it::

    def fib(ctx, n):
        if n < 2:
            yield ctx.compute(LEAF_US)
            return n
        a = yield ctx.spawn(fib, n - 1)
        b = yield ctx.spawn(fib, n - 2)
        yield ctx.taskwait()
        yield ctx.compute(SUM_US)
        return a.result + b.result

Serial (cut-off) recursion composes with plain ``yield from``::

    result = yield from fib(ctx, n - 1)   # inline, no task created
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.runtime.directives import (
    Barrier,
    Compute,
    CriticalBegin,
    CriticalEnd,
    RegionBegin,
    RegionEnd,
    Single,
    Spawn,
    Taskwait,
    TaskYield,
)
from repro.runtime.task import TaskInstance


class TaskContext:
    """Bound to one :class:`TaskInstance`; mostly a directive factory."""

    __slots__ = ("_runtime", "_instance")

    def __init__(self, runtime, instance: TaskInstance) -> None:
        self._runtime = runtime
        self._instance = instance

    # -- directive factories -------------------------------------------
    def compute(
        self,
        us: float,
        label: Optional[str] = None,
        counters: Optional[dict] = None,
    ) -> Compute:
        """Charge ``us`` virtual microseconds of useful work.

        ``counters`` attributes hardware-counter-style metrics (flops,
        bytes, ...) to the current call-path node.
        """
        return Compute(us, label, counters)

    def spawn(
        self,
        fn: Callable[..., Any],
        *args: Any,
        tied: bool = True,
        parameter: Optional[tuple] = None,
        label: Optional[str] = None,
        if_clause: bool = True,
        final: bool = False,
        **kwargs: Any,
    ) -> Spawn:
        """Create an explicit task; the yield returns its TaskHandle.

        ``if_clause=False`` or ``final=True`` make the task *included*:
        executed immediately by this thread, no queueing (the OpenMP
        granularity-control clauses).
        """
        return Spawn(
            fn,
            args,
            kwargs,
            tied=tied,
            parameter=parameter,
            label=label,
            if_clause=if_clause,
            final=final,
        )

    def taskwait(self) -> Taskwait:
        """Wait for all direct children of the current task."""
        return Taskwait()

    def taskyield(self) -> TaskYield:
        """Offer the scheduler a chance to run queued tasks first."""
        return TaskYield()

    def barrier(self) -> Barrier:
        """Team barrier (implicit tasks only)."""
        return Barrier()

    def single(self, name: str = "single") -> Single:
        """Claim a single construct; yields True on the winning thread."""
        return Single(name)

    def begin_region(
        self, name: str, parameter: Optional[tuple] = None
    ) -> RegionBegin:
        """Open a user-defined profiling region (Score-P user API)."""
        return RegionBegin(name, parameter)

    def end_region(self, name: str) -> RegionEnd:
        """Close a user-defined profiling region."""
        return RegionEnd(name)

    def critical(self, name: str = "critical") -> CriticalBegin:
        """Enter a named critical section."""
        return CriticalBegin(name)

    def end_critical(self, name: str = "critical") -> CriticalEnd:
        """Leave a named critical section."""
        return CriticalEnd(name)

    # -- introspection ---------------------------------------------------
    @property
    def thread_id(self) -> int:
        """Id of the thread currently executing this task.

        For tied tasks this is stable after the first fragment; untied
        tasks may observe different values across scheduling points.
        """
        executing = self._instance.executing_thread
        if executing is None:
            raise RuntimeError("thread_id queried while the task is not executing")
        return executing

    @property
    def n_threads(self) -> int:
        return self._runtime.config.n_threads

    @property
    def task_depth(self) -> int:
        """Nesting depth of the current task (implicit task = 0)."""
        return self._instance.depth

    @property
    def instance_id(self) -> int:
        return self._instance.instance_id

    @property
    def is_implicit_task(self) -> bool:
        return self._instance.is_implicit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskContext instance={self._instance.instance_id}>"
