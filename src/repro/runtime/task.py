"""Task instances, handles, and lifecycle states."""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional, Tuple

from repro.events.regions import Region


class TaskState(enum.Enum):
    CREATED = "created"  # descriptor exists, queued, never executed
    RUNNING = "running"  # a thread is executing a fragment right now
    SUSPENDED = "suspended"  # hit a taskwait with incomplete children
    COMPLETED = "completed"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TaskState.{self.name}"


class TaskInstance:
    """One dynamic instance of a task construct (or an implicit task).

    Implicit tasks carry negative ids (one per thread) and ``parent is
    None``; explicit instances count up from 1 and form the task tree the
    OpenMP Task Scheduling Constraint is defined over.
    """

    __slots__ = (
        "instance_id",
        "region",
        "fn",
        "args",
        "kwargs",
        "parent",
        "depth",
        "tied",
        "parameter",
        "state",
        "generator",
        "owner_thread",
        "executing_thread",
        "outstanding_children",
        "waiting_in_taskwait",
        "pending_send",
        "resume_exit_region",
        "result",
        "handle",
        "creation_time",
        "final",
        "included",
        "yielded",
        "injected_fault",
    )

    def __init__(
        self,
        instance_id: int,
        region: Region,
        fn: Optional[Callable[..., Any]],
        args: Tuple[Any, ...],
        kwargs: dict,
        parent: Optional["TaskInstance"],
        tied: bool = True,
        parameter: Optional[tuple] = None,
        creation_time: float = 0.0,
    ) -> None:
        self.instance_id = instance_id
        self.region = region
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.tied = tied
        self.parameter = parameter
        self.state = TaskState.CREATED
        self.generator: Optional[Generator] = None
        #: thread that first executed the task (tied tasks stay here)
        self.owner_thread: Optional[int] = None
        #: thread currently running a fragment (meaningful while RUNNING)
        self.executing_thread: Optional[int] = None
        #: direct children not yet completed (taskwait condition)
        self.outstanding_children = 0
        #: True while suspended inside a taskwait
        self.waiting_in_taskwait = False
        #: value to send into the generator on the next fragment
        self.pending_send: Any = None
        #: region whose exit event must be emitted on resumption (taskwait)
        self.resume_exit_region: Optional[Region] = None
        self.result: Any = None
        self.handle = TaskHandle(self)
        self.creation_time = creation_time
        #: OpenMP final clause: this task and all descendants are included
        self.final = False
        #: executed immediately by the encountering thread, never queued
        self.included = False
        #: suspended at a taskyield; resumable anytime at low priority
        self.yielded = False
        #: fault-injection directive chosen for this instance (None almost
        #: always; see repro.faults.injector.FaultInjector.on_new_task)
        self.injected_fault: Optional[object] = None

    # ------------------------------------------------------------------
    @property
    def is_implicit(self) -> bool:
        return self.instance_id < 0

    @property
    def is_explicit(self) -> bool:
        return self.instance_id > 0

    def is_descendant_of(self, ancestor: "TaskInstance") -> bool:
        """True if ``ancestor`` is on this task's parent chain (or self)."""
        node: Optional[TaskInstance] = self
        while node is not None:
            if node is ancestor:
                return True
            node = node.parent
        return False

    def children_complete(self) -> bool:
        return self.outstanding_children == 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "implicit" if self.is_implicit else "explicit"
        return (
            f"<TaskInstance {self.instance_id} {kind} {self.region.name!r} "
            f"{self.state.value} depth={self.depth}>"
        )


class TaskHandle:
    """What a ``Spawn`` yield evaluates to: a future for the task's result.

    The result is guaranteed available after a ``taskwait`` (for direct
    children) or a ``barrier`` (for all tasks of the region) -- the same
    guarantees OpenMP gives about task side effects.
    """

    __slots__ = ("_instance",)

    def __init__(self, instance: TaskInstance) -> None:
        self._instance = instance

    @property
    def done(self) -> bool:
        return self._instance.state is TaskState.COMPLETED

    @property
    def result(self) -> Any:
        if not self.done:
            raise RuntimeError(
                f"result of task {self._instance.instance_id} read before "
                "completion; synchronize with taskwait or a barrier first"
            )
        return self._instance.result

    @property
    def instance_id(self) -> int:
        return self._instance.instance_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskHandle {self._instance.instance_id} done={self.done}>"
