"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.runtime.costs import CostModel


#: Queue disciplines for ready tasks.
QUEUE_POLICIES = ("lifo", "fifo")
#: Victim selection for work stealing.
STEAL_POLICIES = ("random", "sequential")


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything that determines a simulated run besides the program.

    Attributes
    ----------
    n_threads:
        Team size of the (one) parallel region.
    queue_policy:
        ``'lifo'`` is work-first (newest local task first, like libgomp's
        task stack for tied tasks); ``'fifo'`` is breadth-first.
    steal / steal_policy:
        Whether idle threads steal from other threads' queues, and how the
        victim is picked.  Stealing always takes the *oldest* task of the
        victim.
    tsc_enabled:
        Enforce the OpenMP Task Scheduling Constraint: a new tied task may
        only start on a thread if it is a descendant of every task that is
        tied to and suspended on that thread.
    allow_untied:
        If False (the paper's supported mode -- "our instrumentation makes
        all tasks tied by default", Section IV-D2), ``tied=False`` spawn
        requests are silently downgraded to tied and counted.
    instrument:
        Measurement on/off; the off setting is the Section V baseline.
    record_events:
        Also record a full :class:`~repro.events.stream.ProgramTrace`
        (memory-hungry; for tests and trace-based analysis).
    seed:
        Seed for every scheduling decision (steal victims).
    costs:
        The virtual-time :class:`~repro.runtime.costs.CostModel`.
    """

    n_threads: int = 4
    queue_policy: str = "lifo"
    steal: bool = True
    steal_policy: str = "random"
    tsc_enabled: bool = True
    allow_untied: bool = False
    instrument: bool = True
    record_events: bool = False
    seed: int = 0
    costs: CostModel = field(default_factory=CostModel)
    #: Measurement substrates to attach (Score-P substrate architecture):
    #: a sequence of registry names (``"profiling"``, ``"tracing"``,
    #: ``"validation"``, ``"stats"``, or third-party registrations) and/or
    #: ready-made :class:`~repro.substrates.base.Substrate` instances.
    #: Empty (the default) keeps the classic behavior: ``instrument``
    #: attaches the profiling substrate, ``record_events`` the tracing
    #: substrate.  When non-empty this takes over consumer selection
    #: completely (``instrument`` then only controls whether the base
    #: per-event cost is charged and the measurement filter applied).
    substrates: tuple = ()
    #: Score-P style call-path depth limit; regions entered deeper than
    #: this are folded into the boundary node (None = unlimited).
    max_call_path_depth: int | None = None
    #: Score-P style measurement filter (repro.instrument.filtering.
    #: RegionFilter); suppresses enter/exit events and their cost for
    #: matching regions. Task lifecycle events are never filtered.
    measurement_filter: object | None = None
    #: Armed :class:`~repro.faults.plan.FaultPlan` (None = no faults; the
    #: fault machinery is then never imported, let alone invoked).
    fault_plan: object | None = None
    #: Armed :class:`~repro.governor.MemoryBudget` (None = no governor;
    #: the governor machinery is then never imported, let alone invoked,
    #: and measurement behavior is byte-identical to earlier builds).
    memory_budget: object | None = None
    #: Virtual-time watchdog: if set, ``parallel()`` raises
    #: :class:`~repro.errors.WatchdogTimeout` when the region has not
    #: completed within this many virtual µs (stuck-task detection).
    watchdog_us: float | None = None
    #: Columnar event dispatch: when True (the default) the runtime
    #: fills a struct-of-arrays :class:`~repro.events.batch.EventBatch`
    #: and flushes it to the substrate manager at scheduling-point
    #: boundaries (``on_batch`` fast path); when False every event is
    #: forwarded as an individual listener call (the legacy hot path,
    #: kept for A/B comparison -- both paths produce byte-identical
    #: cubes).  Only effective when a substrate manager is attached.
    batch_events: bool = True
    #: Soft batch size: past this many buffered events the batch drains
    #: at the next task-scheduling point.
    batch_flush_threshold: int = 1024
    #: Hard batch cap: the batch drains wherever it is at this size.
    batch_capacity: int = 8192
    #: Wall-clock watchdog: real seconds one run may take.  Complements
    #: ``watchdog_us``, which cannot catch a kernel stuck in host Python
    #: *without* advancing virtual time.  Enforced by the supervised
    #: worker (:mod:`repro.supervisor.worker`) via ``SIGALRM`` plus a
    #: parent-side kill -- the in-process runtime cannot interrupt a
    #: non-yielding kernel, so plain ``parallel()`` ignores it.
    wall_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {self.n_threads}")
        if not isinstance(self.substrates, tuple):
            # Accept any iterable (lists read naturally at call sites) but
            # store a tuple -- the config is frozen and hash-friendly.
            object.__setattr__(self, "substrates", tuple(self.substrates))
        if self.wall_timeout_s is not None and self.wall_timeout_s <= 0:
            raise ValueError(
                f"wall_timeout_s must be positive, got {self.wall_timeout_s!r}"
            )
        if self.batch_flush_threshold < 1 or self.batch_capacity < self.batch_flush_threshold:
            raise ValueError(
                "need 1 <= batch_flush_threshold <= batch_capacity, got "
                f"batch_flush_threshold={self.batch_flush_threshold!r} "
                f"batch_capacity={self.batch_capacity!r}"
            )
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"queue_policy must be one of {QUEUE_POLICIES}, got {self.queue_policy!r}"
            )
        if self.steal_policy not in STEAL_POLICIES:
            raise ValueError(
                f"steal_policy must be one of {STEAL_POLICIES}, got {self.steal_policy!r}"
            )

    # Convenience builders used throughout the analysis layer ----------
    def with_threads(self, n_threads: int) -> "RuntimeConfig":
        return replace(self, n_threads=n_threads)

    def with_instrumentation(self, enabled: bool) -> "RuntimeConfig":
        return replace(self, instrument=enabled)

    def with_seed(self, seed: int) -> "RuntimeConfig":
        return replace(self, seed=seed)

    def with_costs(self, costs: CostModel) -> "RuntimeConfig":
        return replace(self, costs=costs)

    def with_substrates(self, *substrates) -> "RuntimeConfig":
        """Attach measurement substrates (names and/or instances)."""
        return replace(self, substrates=tuple(substrates))

    def with_memory_budget(self, budget) -> "RuntimeConfig":
        """Arm the resource governor with a MemoryBudget (or None)."""
        return replace(self, memory_budget=budget)

    def with_batching(self, enabled: bool) -> "RuntimeConfig":
        """Toggle columnar event batching (True = batched hot path)."""
        return replace(self, batch_events=enabled)
