"""Directives: the requests task bodies yield to the simulated runtime.

A task (or parallel-region) body is a Python generator.  Each ``yield``
of a directive is a *potential task scheduling point*, mirroring OpenMP's
rule that scheduling only happens at defined points -- which is also why,
like the paper's instrumentation-based approach, this runtime cannot
interrupt a task at arbitrary instructions (Section IV-D2).

Directives are plain data; the executing
:class:`~repro.runtime.thread.WorkerThread` interprets them.  User code
normally constructs them through :class:`~repro.runtime.context.TaskContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Compute:
    """Charge ``us`` virtual microseconds of useful work to the thread.

    ``counters`` optionally carries hardware-counter-style metrics
    (flops, bytes, comparisons, ...) that the profiler attributes to the
    current call-path node alongside time -- the Score-P PAPI-metric
    analogue.
    """

    us: float
    label: Optional[str] = None
    counters: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ValueError(f"negative compute time: {self.us}")
        if self.counters is not None:
            for name, value in self.counters.items():
                if not isinstance(name, str):
                    raise TypeError(f"counter names must be strings, got {name!r}")
                if value < 0:
                    raise ValueError(f"negative counter {name!r}: {value}")


@dataclass(frozen=True, slots=True)
class Spawn:
    """Create an explicit task executing ``fn(ctx, *args, **kwargs)``.

    The yield evaluates to a :class:`~repro.runtime.task.TaskHandle`.

    ``parameter`` is a ``(name, value)`` pair forwarded to the profiler's
    parameter instrumentation (per-value task sub-trees, paper Table IV).
    ``tied=False`` requests an untied task; unless the runtime config sets
    ``allow_untied`` it is downgraded to tied, as the paper's
    instrumentation does.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: dict = field(default_factory=dict)
    tied: bool = True
    parameter: Optional[tuple] = None
    label: Optional[str] = None
    #: OpenMP ``if`` clause: ``if_clause=False`` makes the task
    #: *undeferred* -- the encountering thread executes it immediately.
    #: (Simplification, documented in DESIGN.md: an undeferred task's
    #: descendants are treated as included too, like a ``final`` task.)
    if_clause: bool = True
    #: OpenMP ``final`` clause: the task and all its descendants become
    #: included tasks, executed immediately by the encountering thread
    #: with no queueing -- the standard's own granularity-control knob.
    final: bool = False


@dataclass(frozen=True, slots=True)
class Taskwait:
    """Wait for completion of all *direct* child tasks (OpenMP 3.0 rule)."""


@dataclass(frozen=True, slots=True)
class TaskYield:
    """OpenMP 3.1 ``taskyield``: an explicit task scheduling point.

    The current task may be suspended in favor of *queued* tasks; a tied
    task resumes on the same thread once the thread has nothing better to
    do.  On the implicit task (or when nothing is queued) it is a no-op.
    """


@dataclass(frozen=True, slots=True)
class Barrier:
    """Team barrier; only implicit tasks may yield it.

    All outstanding explicit tasks of the region are executed inside it
    before any thread proceeds.
    """


@dataclass(frozen=True, slots=True)
class Single:
    """Claim a single construct; the yield evaluates to True on the one
    thread that wins the claim.

    Semantically this is ``single nowait``: there is no implied barrier,
    so programs place an explicit :class:`Barrier` where needed (as the
    BOTS single-producer codes do).
    """

    name: str = "single"


@dataclass(frozen=True, slots=True)
class RegionBegin:
    """Enter a user-defined measurement region (Score-P's user API).

    Purely a profiling construct: structures the call-path profile
    without any scheduling effect.  ``parameter`` optionally qualifies
    the node (one sub-node per value, Score-P parameter instrumentation).
    """

    name: str
    parameter: Optional[tuple] = None


@dataclass(frozen=True, slots=True)
class RegionEnd:
    """Leave a user-defined measurement region."""

    name: str


@dataclass(frozen=True, slots=True)
class CriticalBegin:
    """Enter a named critical section (acquire its lock, in virtual time)."""

    name: str = "critical"


@dataclass(frozen=True, slots=True)
class CriticalEnd:
    """Leave a named critical section."""

    name: str = "critical"
