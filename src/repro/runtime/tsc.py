"""The OpenMP Task Scheduling Constraint (TSC).

OpenMP 3.0, Section 2.7.1: "In order to start the execution of a new tied
task, the new task must be a descendant of every suspended task tied to
the same thread."  The constraint guarantees deadlock-free progress of
tied tasks without the runtime having to grow the stack unboundedly.

Resumption of an already-started suspended task is *not* restricted by the
TSC -- which is why the paper's Fig. 4 stream (task1 resumes while task2
is still suspended) is legal, and why the profiler must handle arbitrary
suspend/resume interleavings rather than a stack discipline.
"""

from __future__ import annotations

from typing import Iterable

from repro.runtime.task import TaskInstance


def may_start(candidate: TaskInstance, suspended_tied: Iterable[TaskInstance]) -> bool:
    """May ``candidate`` (a new, never-executed task) start on a thread
    whose suspended tied tasks are ``suspended_tied``?

    Untied candidates are unconstrained.  Tied candidates must be a
    descendant of every suspended tied task of the thread.
    """
    if not candidate.tied:
        return True
    for suspended in suspended_tied:
        if not candidate.is_descendant_of(suspended):
            return False
    return True


def eligible_index(
    candidates: list, suspended_tied: Iterable[TaskInstance], from_end: bool
) -> int:
    """Index of the first TSC-eligible task in ``candidates``.

    Scans from the back (``from_end=True``, LIFO / work-first) or the
    front (FIFO / breadth-first or steal).  Returns -1 if none is
    eligible.  ``suspended_tied`` is materialized once since it is checked
    per candidate.
    """
    suspended = list(suspended_tied)
    indices = range(len(candidates) - 1, -1, -1) if from_end else range(len(candidates))
    for index in indices:
        if may_start(candidates[index], suspended):
            return index
    return -1
